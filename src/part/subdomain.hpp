#pragma once
/// \file subdomain.hpp
/// Subdomain extraction: given a cell partition, build per-rank local
/// meshes (owned cells first, then a node-adjacent ghost layer) together
/// with the Typhon exchange schedules that refresh ghost data. The ghost
/// layer contains *every* cell sharing a node with an owned cell, so the
/// corner-force assembly at any node of an owned cell is complete locally
/// once ghost corner forces are exchanged (the paper's pre-acceleration
/// halo exchange).

#include <vector>

#include "mesh/mesh.hpp"
#include "typhon/typhon.hpp"
#include "util/csr.hpp"
#include "util/types.hpp"

namespace bookleaf::part {

struct Subdomain {
    int rank = -1;
    mesh::Mesh local; ///< owned cells in [0, n_owned_cells), ghosts after

    std::vector<Index> local_cells; ///< local cell -> global cell
    std::vector<Index> local_nodes; ///< local node -> global node
    Index n_owned_cells = 0;
    std::vector<std::uint8_t> node_owned; ///< 1 if this rank owns the node

    typhon::ExchangeSchedule cell_schedule;   ///< ghost cell scalars
    typhon::ExchangeSchedule corner_schedule; ///< ghost corner fields (4/cell)
    typhon::ExchangeSchedule node_schedule;   ///< ghost node scalars

    // --- distributed remap schedules and stencil metadata ------------------
    /// Cell-centred remap schedule: *face-adjacent* ghost cells only (the
    /// donor/limiter stencil of the flux reconstruction). Carries the four
    /// limited-gradient fields from their owning rank before the face
    /// fluxes are evaluated, so limited reconstruction at a boundary cell
    /// sees bitwise the same gradients as a serial run. A strict subset of
    /// cell_schedule's node-adjacent ghost layer — gradients of ghosts
    /// that are only node-adjacent are never read by any owned face flux.
    typhon::ExchangeSchedule remap_cell_schedule;
    /// Dual-mesh remap schedule: ghost corners (4 per ghost cell),
    /// carrying the remapped corner masses and the median-dual fluxes
    /// {cnmass, dflux} from their owning rank after the cell sweep. The
    /// dual fluxes of a ghost cell are NOT locally computable (its far
    /// faces leave the subdomain), yet they drive the momentum transfer
    /// into nodes this rank owns — this schedule is what closes the
    /// dual-mesh (momentum/corner-mass) remap at partition boundaries.
    /// Item-for-item the same ghost-corner pairing as corner_schedule,
    /// kept as its own schedule so the remap wire format is independently
    /// documented and counted.
    typhon::ExchangeSchedule remap_dual_schedule;
    /// Local faces incident to at least one owned cell — the faces whose
    /// swept volumes / fluxes the remap evaluates here. Every other local
    /// face is either interior to the ghost layer or *phantom* (a ghost
    /// cell's far face that is locally boundary but globally interior);
    /// their fluxes come in through remap_dual_schedule instead of being
    /// computed against a nonexistent neighbour.
    std::vector<Index> remap_faces;
    /// Local nodes whose full global cell stencil is present locally (the
    /// local node_cells row has the global row's length). The nodal remap
    /// (momentum + corner-mass gather) is evaluated exactly for these —
    /// a superset of every node of an owned cell — and skipped for the
    /// fringe, whose owners compute them and whose state the next
    /// pre-step halo refreshes.
    std::vector<Index> remap_nodes;
    /// node -> (cell, corner) gather CSR with each row permuted to
    /// ascending *global* flat corner id. Local cell numbering is
    /// owned-first, so the local mesh's node_corners rows visit a
    /// boundary node's corners in a different order than the global mesh
    /// — summing in that order would make nodal assembly differ from the
    /// serial run in round-off. hydro::Context::assembly_corners points
    /// here in distributed runs, making the corner->node gathers (getacc
    /// and the dual-mesh remap) bitwise identical to serial.
    util::Csr assembly_corners;

    // --- halo/compute overlap sets (local ids, ascending) -----------------
    // boundary_cells / interior_cells partition all local cells. A cell is
    // *boundary* when its kernel stencil (the cell itself plus its face
    // neighbours, whose nodes the viscosity limiter reads) can see data
    // refreshed by a halo exchange: ghost cells, cells sharing a node with
    // a ghost cell, and cells with such a face neighbour. Interior cells
    // read only owned-fresh data, so the overlapped schedule may run them
    // while halo messages are in flight; boundary cells run after the
    // pre-step exchange completes and (being a superset of every peer's
    // ghost layer) before the corner-force sends are packed.
    //
    // boundary_nodes / interior_nodes partition all local nodes by
    // ghost-cell incidence: the corner-force gather at an interior node
    // reads no ghost corner, so its assembly can proceed before the
    // pre-acceleration exchange completes.
    std::vector<Index> boundary_cells, interior_cells;
    std::vector<Index> boundary_nodes, interior_nodes;

    // --- schedule field-count metadata ------------------------------------
    // How many fields each of the distributed driver's exchanges carries —
    // i.e. how many item slices a coalesced per-peer message packs
    // back-to-back. Per step: the fused state halo {x, y, u, v} + {ein}
    // (node and cell groups of ONE wire exchange) and the corner halo
    // {fx, fy}. Per remap: the same fused state refresh, the target-mesh
    // halo {xt, yt} per smoothing sync, the gradient halo {grad_rho_x,
    // grad_rho_y, grad_e_x, grad_e_y}, and the fused result exchange
    // {cell_mass, ein} + {cnmass, dflux}. The driver's exchange calls
    // static_assert against these at the field lists themselves, and the
    // coalescing ablation bench + DistPacking/DistRemap tests check the
    // Hub's measured message counts against messages_per_step() /
    // messages_per_remap() at runtime, so the metadata cannot silently
    // drift from the real wire format.
    static constexpr int node_exchange_fields = 4;
    static constexpr int cell_exchange_fields = 1;
    static constexpr int corner_exchange_fields = 2;
    static constexpr int remap_mesh_fields = 2;
    static constexpr int remap_grad_fields = 4;
    static constexpr int remap_cell_result_fields = 2;
    static constexpr int remap_dual_fields = 2;

    /// Schedule entries that actually send (non-empty send_items) — the
    /// messages one coalesced exchange posts from this rank.
    [[nodiscard]] static Index n_sending_peers(
        const typhon::ExchangeSchedule& schedule);

    /// Local nodes this rank owns (the node_owned popcount) — the node
    /// slice it contributes to a checkpoint gather. Owned cell counts are
    /// n_owned_cells directly.
    [[nodiscard]] Index n_owned_nodes() const;

    /// Sending peers of the fused pre-step state halo: the union of the
    /// node and cell schedules' sending peer sets (one coalesced message
    /// per union peer — the ein halo rides in the node-halo message
    /// wherever the peer sets align, and alone where they do not).
    [[nodiscard]] Index n_state_peers() const;

    /// Point-to-point messages this rank posts per Lagrangian step:
    /// coalesced packing posts one message per union peer of the fused
    /// state halo plus one per sending peer of the corner halo; per-field
    /// packing falls back to one message per field per peer per schedule.
    [[nodiscard]] Index messages_per_step(typhon::Packing packing) const;

    /// Point-to-point messages this rank posts per ALE/Eulerian remap.
    /// `n_mesh_exchanges` is the number of target-mesh {xt, yt} syncs the
    /// remap performs: 0 in Eulerian mode (the target is the original
    /// mesh, exact everywhere locally), smoothing_passes + 1 in ALE mode
    /// (one per Jacobi pass plus the post-clamp sync).
    [[nodiscard]] Index messages_per_remap(typhon::Packing packing,
                                           int n_mesh_exchanges) const;
};

/// Split the global mesh into n_parts subdomains. `part[c]` is the rank
/// owning global cell c. Node ownership: the minimum rank among the parts
/// of the node's incident cells.
[[nodiscard]] std::vector<Subdomain> decompose(const mesh::Mesh& global,
                                               const std::vector<Index>& part,
                                               int n_parts);

} // namespace bookleaf::part
