/// \file multilevel.cpp
/// Multilevel graph partitioner — the METIS-substitute (paper §III-A
/// uses "a hypergraph strategy via METIS"; METIS is closed-world here, so
/// the same multilevel scheme [31] is implemented from scratch):
///   1. coarsen by heavy-edge matching until the graph is small,
///   2. partition the coarsest graph by greedy seeded region growth,
///   3. uncoarsen, refining at every level with Fiduccia-Mattheyses-style
///      gain-driven boundary moves under a balance constraint.

#include <algorithm>
#include <numeric>

#include "part/partition.hpp"
#include "util/error.hpp"
#include "util/random.hpp"

namespace bookleaf::part {

Graph dual_graph(const mesh::Mesh& mesh) {
    const Index n_cells = mesh.n_cells();
    Graph g;
    g.vwgt.assign(static_cast<std::size_t>(n_cells), 1);
    g.xadj.assign(static_cast<std::size_t>(n_cells) + 1, 0);
    for (Index c = 0; c < n_cells; ++c)
        for (int k = 0; k < corners_per_cell; ++k)
            if (mesh.neighbor(c, k) != no_index)
                ++g.xadj[static_cast<std::size_t>(c) + 1];
    for (std::size_t i = 0; i < static_cast<std::size_t>(n_cells); ++i)
        g.xadj[i + 1] += g.xadj[i];
    g.adjncy.resize(static_cast<std::size_t>(g.xadj.back()));
    g.adjwgt.assign(g.adjncy.size(), 1);
    std::vector<Index> cursor(g.xadj.begin(), g.xadj.end() - 1);
    for (Index c = 0; c < n_cells; ++c)
        for (int k = 0; k < corners_per_cell; ++k) {
            const Index nb = mesh.neighbor(c, k);
            if (nb != no_index)
                g.adjncy[static_cast<std::size_t>(
                    cursor[static_cast<std::size_t>(c)]++)] = nb;
        }
    return g;
}

namespace {

/// One coarsening level: heavy-edge matching + contraction.
struct CoarseLevel {
    Graph graph;
    std::vector<Index> fine_to_coarse;
};

CoarseLevel coarsen(const Graph& g, util::SplitMix64& rng) {
    const Index n = g.n_vertices();
    std::vector<Index> match(static_cast<std::size_t>(n), no_index);
    std::vector<Index> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    for (Index i = n - 1; i > 0; --i)
        std::swap(order[static_cast<std::size_t>(i)],
                  order[rng.uniform_index(static_cast<std::uint64_t>(i) + 1)]);

    // Heavy-edge matching.
    for (const Index v : order) {
        if (match[static_cast<std::size_t>(v)] != no_index) continue;
        Index best = no_index;
        Index best_w = -1;
        for (Index e = g.xadj[static_cast<std::size_t>(v)];
             e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
            const Index u = g.adjncy[static_cast<std::size_t>(e)];
            if (match[static_cast<std::size_t>(u)] != no_index) continue;
            const Index w = g.adjwgt[static_cast<std::size_t>(e)];
            if (w > best_w) {
                best_w = w;
                best = u;
            }
        }
        if (best != no_index) {
            match[static_cast<std::size_t>(v)] = best;
            match[static_cast<std::size_t>(best)] = v;
        } else {
            match[static_cast<std::size_t>(v)] = v; // self-matched
        }
    }

    // Number coarse vertices.
    CoarseLevel out;
    out.fine_to_coarse.assign(static_cast<std::size_t>(n), no_index);
    Index nc = 0;
    for (Index v = 0; v < n; ++v) {
        if (out.fine_to_coarse[static_cast<std::size_t>(v)] != no_index) continue;
        const Index m = match[static_cast<std::size_t>(v)];
        out.fine_to_coarse[static_cast<std::size_t>(v)] = nc;
        out.fine_to_coarse[static_cast<std::size_t>(m)] = nc;
        ++nc;
    }

    // Contract: merge vertex weights and edges (summing parallel edges).
    out.graph.vwgt.assign(static_cast<std::size_t>(nc), 0);
    for (Index v = 0; v < n; ++v)
        out.graph.vwgt[static_cast<std::size_t>(
            out.fine_to_coarse[static_cast<std::size_t>(v)])] +=
            g.vwgt[static_cast<std::size_t>(v)];

    std::vector<std::vector<std::pair<Index, Index>>> edges(
        static_cast<std::size_t>(nc));
    for (Index v = 0; v < n; ++v) {
        const Index cv = out.fine_to_coarse[static_cast<std::size_t>(v)];
        for (Index e = g.xadj[static_cast<std::size_t>(v)];
             e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
            const Index cu = out.fine_to_coarse[static_cast<std::size_t>(
                g.adjncy[static_cast<std::size_t>(e)])];
            if (cu == cv) continue;
            edges[static_cast<std::size_t>(cv)].emplace_back(
                cu, g.adjwgt[static_cast<std::size_t>(e)]);
        }
    }
    out.graph.xadj.assign(static_cast<std::size_t>(nc) + 1, 0);
    for (Index cv = 0; cv < nc; ++cv) {
        auto& es = edges[static_cast<std::size_t>(cv)];
        std::sort(es.begin(), es.end());
        // merge duplicates
        std::size_t w = 0;
        for (std::size_t r = 0; r < es.size(); ++r) {
            if (w > 0 && es[w - 1].first == es[r].first)
                es[w - 1].second += es[r].second;
            else
                es[w++] = es[r];
        }
        es.resize(w);
        out.graph.xadj[static_cast<std::size_t>(cv) + 1] =
            out.graph.xadj[static_cast<std::size_t>(cv)] + static_cast<Index>(w);
    }
    out.graph.adjncy.reserve(static_cast<std::size_t>(out.graph.xadj.back()));
    out.graph.adjwgt.reserve(static_cast<std::size_t>(out.graph.xadj.back()));
    for (Index cv = 0; cv < nc; ++cv)
        for (const auto& [u, w] : edges[static_cast<std::size_t>(cv)]) {
            out.graph.adjncy.push_back(u);
            out.graph.adjwgt.push_back(w);
        }
    return out;
}

/// Greedy seeded growth on the coarsest graph.
std::vector<Index> initial_partition(const Graph& g, int n_parts,
                                     util::SplitMix64& rng) {
    const Index n = g.n_vertices();
    const Index total = g.total_weight();
    std::vector<Index> part(static_cast<std::size_t>(n), no_index);
    Index assigned_w = 0;

    for (int p = 0; p < n_parts - 1; ++p) {
        const Index target =
            (total - assigned_w) / static_cast<Index>(n_parts - p);
        // Seed: unassigned vertex (random probe, then linear fallback).
        Index seed = no_index;
        for (int probe = 0; probe < 16 && seed == no_index; ++probe) {
            const auto v = static_cast<Index>(
                rng.uniform_index(static_cast<std::uint64_t>(n)));
            if (part[static_cast<std::size_t>(v)] == no_index) seed = v;
        }
        if (seed == no_index)
            for (Index v = 0; v < n && seed == no_index; ++v)
                if (part[static_cast<std::size_t>(v)] == no_index) seed = v;
        if (seed == no_index) break;

        // BFS growth until the target weight.
        std::vector<Index> frontier = {seed};
        part[static_cast<std::size_t>(seed)] = p;
        Index w = g.vwgt[static_cast<std::size_t>(seed)];
        std::size_t head = 0;
        while (w < target && head < frontier.size()) {
            const Index v = frontier[head++];
            for (Index e = g.xadj[static_cast<std::size_t>(v)];
                 e < g.xadj[static_cast<std::size_t>(v) + 1] && w < target; ++e) {
                const Index u = g.adjncy[static_cast<std::size_t>(e)];
                if (part[static_cast<std::size_t>(u)] != no_index) continue;
                part[static_cast<std::size_t>(u)] = p;
                w += g.vwgt[static_cast<std::size_t>(u)];
                frontier.push_back(u);
            }
        }
        assigned_w += w;
    }
    for (Index v = 0; v < n; ++v)
        if (part[static_cast<std::size_t>(v)] == no_index)
            part[static_cast<std::size_t>(v)] = n_parts - 1;
    return part;
}

/// FM-style refinement: gain-driven boundary moves under a balance bound.
void refine(const Graph& g, int n_parts, std::vector<Index>& part) {
    const Index n = g.n_vertices();
    const Index total = g.total_weight();
    const Real max_weight =
        Real(1.1) * static_cast<Real>(total) / static_cast<Real>(n_parts);

    std::vector<Index> pw(static_cast<std::size_t>(n_parts), 0);
    for (Index v = 0; v < n; ++v)
        pw[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
            g.vwgt[static_cast<std::size_t>(v)];

    for (int pass = 0; pass < 6; ++pass) {
        bool moved = false;
        for (Index v = 0; v < n; ++v) {
            const Index pv = part[static_cast<std::size_t>(v)];
            // Connectivity of v to each adjacent part.
            Index internal = 0;
            Index best_part = no_index;
            Index best_ext = 0;
            // Small local scan (quad meshes: degree <= 4 at fine levels).
            for (Index e = g.xadj[static_cast<std::size_t>(v)];
                 e < g.xadj[static_cast<std::size_t>(v) + 1]; ++e) {
                const Index u = g.adjncy[static_cast<std::size_t>(e)];
                const Index pu = part[static_cast<std::size_t>(u)];
                const Index w = g.adjwgt[static_cast<std::size_t>(e)];
                if (pu == pv) {
                    internal += w;
                    continue;
                }
                // Sum weight toward pu.
                Index ext = 0;
                for (Index e2 = g.xadj[static_cast<std::size_t>(v)];
                     e2 < g.xadj[static_cast<std::size_t>(v) + 1]; ++e2)
                    if (part[static_cast<std::size_t>(
                            g.adjncy[static_cast<std::size_t>(e2)])] == pu)
                        ext += g.adjwgt[static_cast<std::size_t>(e2)];
                if (ext > best_ext) {
                    best_ext = ext;
                    best_part = pu;
                }
            }
            if (best_part == no_index) continue;
            const Index gain = best_ext - internal;
            const Index vw = g.vwgt[static_cast<std::size_t>(v)];
            const bool balance_ok =
                static_cast<Real>(pw[static_cast<std::size_t>(best_part)] + vw) <=
                    max_weight &&
                pw[static_cast<std::size_t>(pv)] - vw > 0;
            if (gain > 0 && balance_ok) {
                part[static_cast<std::size_t>(v)] = best_part;
                pw[static_cast<std::size_t>(pv)] -= vw;
                pw[static_cast<std::size_t>(best_part)] += vw;
                moved = true;
            }
        }
        if (!moved) break;
    }
}

} // namespace

std::vector<Index> multilevel(const mesh::Mesh& mesh, int n_parts,
                              std::uint64_t seed) {
    util::require(n_parts > 0, "multilevel: n_parts must be positive");
    util::require(mesh.n_cells() >= n_parts, "multilevel: fewer cells than parts");
    util::SplitMix64 rng(seed);

    if (n_parts == 1)
        return std::vector<Index>(static_cast<std::size_t>(mesh.n_cells()), 0);

    // Coarsening ladder.
    std::vector<Graph> graphs;
    std::vector<std::vector<Index>> maps;
    graphs.push_back(dual_graph(mesh));
    const Index coarse_target = std::max<Index>(4 * n_parts, 32);
    while (graphs.back().n_vertices() > coarse_target) {
        auto level = coarsen(graphs.back(), rng);
        if (level.graph.n_vertices() >=
            graphs.back().n_vertices()) // no shrink: stop
            break;
        maps.push_back(std::move(level.fine_to_coarse));
        graphs.push_back(std::move(level.graph));
    }

    // Coarsest partition + refinement.
    std::vector<Index> part = initial_partition(graphs.back(), n_parts, rng);
    refine(graphs.back(), n_parts, part);

    // Uncoarsen with refinement at each level.
    for (std::size_t level = maps.size(); level-- > 0;) {
        const auto& map = maps[level];
        std::vector<Index> fine_part(map.size());
        for (std::size_t v = 0; v < map.size(); ++v)
            fine_part[v] = part[static_cast<std::size_t>(map[v])];
        part = std::move(fine_part);
        refine(graphs[level], n_parts, part);
    }
    return part;
}

} // namespace bookleaf::part
