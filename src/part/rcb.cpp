/// \file rcb.cpp
/// Recursive coordinate bisection. At each level the cell set is split at
/// the weighted median along its longest centroid extent, with part
/// counts divided proportionally so any n_parts is supported. This is the
/// "simple RCB strategy" of the paper, and it is also the partitioner
/// whose serial implementation the paper identifies as the strong-scaling
/// bottleneck (§V-C) — reproduced faithfully as a serial algorithm.

#include <algorithm>
#include <span>

#include "part/partition.hpp"
#include "util/error.hpp"

namespace bookleaf::part {

namespace {

struct Centroid {
    Real x, y;
    Index cell;
};

void split(std::span<Centroid> cells, int n_parts, Index first_part,
           std::vector<Index>& part) {
    if (n_parts == 1) {
        for (const auto& c : cells) part[static_cast<std::size_t>(c.cell)] = first_part;
        return;
    }
    // Longest extent decides the split axis.
    Real xmin = cells.front().x, xmax = xmin, ymin = cells.front().y, ymax = ymin;
    for (const auto& c : cells) {
        xmin = std::min(xmin, c.x);
        xmax = std::max(xmax, c.x);
        ymin = std::min(ymin, c.y);
        ymax = std::max(ymax, c.y);
    }
    const bool split_x = (xmax - xmin) >= (ymax - ymin);

    const int left_parts = n_parts / 2;
    const int right_parts = n_parts - left_parts;
    const auto cut = static_cast<std::ptrdiff_t>(
        cells.size() * static_cast<std::size_t>(left_parts) /
        static_cast<std::size_t>(n_parts));

    std::nth_element(cells.begin(), cells.begin() + cut, cells.end(),
                     [split_x](const Centroid& a, const Centroid& b) {
                         return split_x ? a.x < b.x : a.y < b.y;
                     });

    split(cells.first(static_cast<std::size_t>(cut)), left_parts, first_part, part);
    split(cells.subspan(static_cast<std::size_t>(cut)), right_parts,
          first_part + left_parts, part);
}

} // namespace

std::vector<Index> rcb(const mesh::Mesh& mesh, int n_parts) {
    util::require(n_parts > 0, "rcb: n_parts must be positive");
    const Index n_cells = mesh.n_cells();
    util::require(n_cells >= n_parts, "rcb: fewer cells than parts");

    std::vector<Centroid> cells(static_cast<std::size_t>(n_cells));
    for (Index c = 0; c < n_cells; ++c) {
        Real sx = 0, sy = 0;
        for (int k = 0; k < corners_per_cell; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            sx += mesh.x[n];
            sy += mesh.y[n];
        }
        cells[static_cast<std::size_t>(c)] = {Real(0.25) * sx, Real(0.25) * sy, c};
    }

    std::vector<Index> part(static_cast<std::size_t>(n_cells), 0);
    split(std::span<Centroid>(cells), n_parts, 0, part);
    return part;
}

Quality quality(const mesh::Mesh& mesh, const std::vector<Index>& part,
                int n_parts) {
    Quality q;
    q.part_cells.assign(static_cast<std::size_t>(n_parts), 0);
    for (const Index p : part) q.part_cells[static_cast<std::size_t>(p)]++;
    for (const auto& f : mesh.faces)
        if (f.right != no_index &&
            part[static_cast<std::size_t>(f.left)] !=
                part[static_cast<std::size_t>(f.right)])
            ++q.edge_cut;
    const Real ideal =
        static_cast<Real>(mesh.n_cells()) / static_cast<Real>(n_parts);
    Index max_cells = 0;
    for (const Index c : q.part_cells) max_cells = std::max(max_cells, c);
    q.imbalance = static_cast<Real>(max_cells) / ideal;
    return q;
}

} // namespace bookleaf::part
