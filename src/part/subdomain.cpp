#include "part/subdomain.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace bookleaf::part {

Index Subdomain::n_sending_peers(const typhon::ExchangeSchedule& schedule) {
    Index n = 0;
    for (const auto& peer : schedule.peers)
        if (!peer.send_items.empty()) ++n;
    return n;
}

Index Subdomain::messages_per_step(typhon::Packing packing) const {
    const Index node_peers = n_sending_peers(node_schedule);
    const Index cell_peers = n_sending_peers(cell_schedule);
    const Index corner_peers = n_sending_peers(corner_schedule);
    if (packing == typhon::Packing::coalesced)
        return node_peers + cell_peers + corner_peers;
    return node_exchange_fields * node_peers +
           cell_exchange_fields * cell_peers +
           corner_exchange_fields * corner_peers;
}

std::vector<Subdomain> decompose(const mesh::Mesh& global,
                                 const std::vector<Index>& part, int n_parts) {
    const Index n_cells = global.n_cells();
    const Index n_nodes = global.n_nodes();
    util::require(part.size() == static_cast<std::size_t>(n_cells),
                  "decompose: partition size mismatch");

    // Node owners: min part over incident cells.
    std::vector<Index> node_owner(static_cast<std::size_t>(n_nodes),
                                  std::numeric_limits<Index>::max());
    for (Index n = 0; n < n_nodes; ++n)
        for (const Index c : global.node_cells.row(n))
            node_owner[static_cast<std::size_t>(n)] =
                std::min(node_owner[static_cast<std::size_t>(n)],
                         part[static_cast<std::size_t>(c)]);

    std::vector<Subdomain> subs(static_cast<std::size_t>(n_parts));

    // Owned cell lists (ascending global id by construction).
    std::vector<std::vector<Index>> owned(static_cast<std::size_t>(n_parts));
    for (Index c = 0; c < n_cells; ++c)
        owned[static_cast<std::size_t>(part[static_cast<std::size_t>(c)])]
            .push_back(c);

    // Global cell -> owner-local id (owned cells are numbered first).
    std::vector<Index> owner_local(static_cast<std::size_t>(n_cells));
    for (int r = 0; r < n_parts; ++r)
        for (std::size_t i = 0; i < owned[static_cast<std::size_t>(r)].size(); ++i)
            owner_local[static_cast<std::size_t>(
                owned[static_cast<std::size_t>(r)][i])] = static_cast<Index>(i);

    for (int r = 0; r < n_parts; ++r) {
        auto& sub = subs[static_cast<std::size_t>(r)];
        sub.rank = r;
        const auto& own = owned[static_cast<std::size_t>(r)];
        sub.n_owned_cells = static_cast<Index>(own.size());

        // Ghost layer: node-adjacent foreign cells.
        std::vector<Index> ghosts;
        {
            std::vector<std::uint8_t> seen(static_cast<std::size_t>(n_cells), 0);
            for (const Index c : own) seen[static_cast<std::size_t>(c)] = 1;
            for (const Index c : own)
                for (int k = 0; k < corners_per_cell; ++k) {
                    const Index node = global.cn(c, k);
                    for (const Index adj : global.node_cells.row(node))
                        if (!seen[static_cast<std::size_t>(adj)]) {
                            seen[static_cast<std::size_t>(adj)] = 1;
                            ghosts.push_back(adj);
                        }
                }
        }
        std::sort(ghosts.begin(), ghosts.end(),
                  [&](Index a, Index b) {
                      const Index pa = part[static_cast<std::size_t>(a)];
                      const Index pb = part[static_cast<std::size_t>(b)];
                      return pa != pb ? pa < pb : a < b;
                  });

        sub.local_cells = own;
        sub.local_cells.insert(sub.local_cells.end(), ghosts.begin(),
                               ghosts.end());

        // Local nodes: union of the local cells' nodes, sorted by global id.
        {
            std::vector<Index> nodes;
            nodes.reserve(sub.local_cells.size() * corners_per_cell);
            for (const Index c : sub.local_cells)
                for (int k = 0; k < corners_per_cell; ++k)
                    nodes.push_back(global.cn(c, k));
            std::sort(nodes.begin(), nodes.end());
            nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
            sub.local_nodes = std::move(nodes);
        }

        std::unordered_map<Index, Index> node_g2l;
        node_g2l.reserve(sub.local_nodes.size());
        for (std::size_t i = 0; i < sub.local_nodes.size(); ++i)
            node_g2l.emplace(sub.local_nodes[i], static_cast<Index>(i));

        // Local mesh.
        auto& lm = sub.local;
        lm.x.resize(sub.local_nodes.size());
        lm.y.resize(sub.local_nodes.size());
        lm.node_bc.resize(sub.local_nodes.size());
        sub.node_owned.resize(sub.local_nodes.size());
        for (std::size_t i = 0; i < sub.local_nodes.size(); ++i) {
            const auto g = static_cast<std::size_t>(sub.local_nodes[i]);
            lm.x[i] = global.x[g];
            lm.y[i] = global.y[g];
            lm.node_bc[i] = global.node_bc[g];
            sub.node_owned[i] = node_owner[g] == r ? 1 : 0;
        }
        lm.cell_nodes.reserve(sub.local_cells.size() * corners_per_cell);
        lm.cell_region.reserve(sub.local_cells.size());
        for (const Index c : sub.local_cells) {
            for (int k = 0; k < corners_per_cell; ++k)
                lm.cell_nodes.push_back(node_g2l.at(global.cn(c, k)));
            lm.cell_region.push_back(
                global.cell_region[static_cast<std::size_t>(c)]);
        }
        mesh::build_connectivity(lm);

        // --- boundary/interior overlap sets --------------------------------
        // Nodes incident to a ghost cell: their assembly needs exchanged
        // corner forces, and their kinematic state is refreshed by the
        // node halo (a non-owned node is always incident to a ghost cell:
        // the foreign owned cell that makes it non-owned is node-adjacent
        // to an owned cell here, hence in the ghost layer).
        const auto n_local_cells = static_cast<Index>(sub.local_cells.size());
        const auto n_local_nodes = static_cast<Index>(sub.local_nodes.size());
        std::vector<std::uint8_t> node_near_ghost(
            static_cast<std::size_t>(n_local_nodes), 0);
        for (Index lc = sub.n_owned_cells; lc < n_local_cells; ++lc)
            for (int k = 0; k < corners_per_cell; ++k)
                node_near_ghost[static_cast<std::size_t>(lm.cn(lc, k))] = 1;
        for (Index ln = 0; ln < n_local_nodes; ++ln)
            (node_near_ghost[static_cast<std::size_t>(ln)] ? sub.boundary_nodes
                                                           : sub.interior_nodes)
                .push_back(ln);

        // Cells whose own nodes touch a ghost cell ("near"), then widen by
        // one face ring: the viscosity limiter of a cell reads the nodes
        // of its face neighbours, so a cell is interior only if neither it
        // nor any face neighbour is near. Ghost cells are near by
        // construction (they share their own nodes).
        std::vector<std::uint8_t> near(static_cast<std::size_t>(n_local_cells),
                                       0);
        for (Index lc = 0; lc < n_local_cells; ++lc)
            for (int k = 0; k < corners_per_cell; ++k)
                if (node_near_ghost[static_cast<std::size_t>(lm.cn(lc, k))]) {
                    near[static_cast<std::size_t>(lc)] = 1;
                    break;
                }
        for (Index lc = 0; lc < n_local_cells; ++lc) {
            bool boundary = near[static_cast<std::size_t>(lc)];
            for (int k = 0; !boundary && k < corners_per_cell; ++k) {
                const Index nb = lm.neighbor(lc, k);
                if (nb != no_index && near[static_cast<std::size_t>(nb)])
                    boundary = true;
            }
            (boundary ? sub.boundary_cells : sub.interior_cells).push_back(lc);
        }
    }

    // --- exchange schedules --------------------------------------------------
    // Cell/corner: ghost cells of r owned by o; both sides ordered by global
    // cell id (the ghost list is already (owner, id)-sorted).
    for (int r = 0; r < n_parts; ++r) {
        auto& sub = subs[static_cast<std::size_t>(r)];
        std::map<int, std::vector<std::pair<Index, Index>>> by_owner; // owner -> (global, local)
        for (Index lc = sub.n_owned_cells;
             lc < static_cast<Index>(sub.local_cells.size()); ++lc) {
            const Index gc = sub.local_cells[static_cast<std::size_t>(lc)];
            by_owner[static_cast<int>(part[static_cast<std::size_t>(gc)])]
                .emplace_back(gc, lc);
        }
        for (auto& [o, items] : by_owner) {
            // items already sorted by global id (ghost ordering).
            typhon::ExchangeSchedule::Peer recv_peer;
            recv_peer.rank = o;
            typhon::ExchangeSchedule::Peer send_peer;
            send_peer.rank = r;
            typhon::ExchangeSchedule::Peer recv_corner;
            recv_corner.rank = o;
            typhon::ExchangeSchedule::Peer send_corner;
            send_corner.rank = r;
            for (const auto& [gc, lc] : items) {
                recv_peer.recv_items.push_back(lc);
                const Index ol = owner_local[static_cast<std::size_t>(gc)];
                send_peer.send_items.push_back(ol);
                for (int k = 0; k < corners_per_cell; ++k) {
                    recv_corner.recv_items.push_back(lc * corners_per_cell + k);
                    send_corner.send_items.push_back(ol * corners_per_cell + k);
                }
            }
            sub.cell_schedule.peers.push_back(std::move(recv_peer));
            sub.corner_schedule.peers.push_back(std::move(recv_corner));
            subs[static_cast<std::size_t>(o)].cell_schedule.peers.push_back(
                std::move(send_peer));
            subs[static_cast<std::size_t>(o)].corner_schedule.peers.push_back(
                std::move(send_corner));
        }
    }

    // Node schedule: ghost nodes of r receive from their owner o. Both
    // sides ordered by global node id.
    {
        // Per-rank local node lookup.
        std::vector<std::unordered_map<Index, Index>> g2l(
            static_cast<std::size_t>(n_parts));
        for (int r = 0; r < n_parts; ++r) {
            auto& m = g2l[static_cast<std::size_t>(r)];
            const auto& ln = subs[static_cast<std::size_t>(r)].local_nodes;
            m.reserve(ln.size());
            for (std::size_t i = 0; i < ln.size(); ++i)
                m.emplace(ln[i], static_cast<Index>(i));
        }
        for (int r = 0; r < n_parts; ++r) {
            auto& sub = subs[static_cast<std::size_t>(r)];
            std::map<int, std::vector<Index>> by_owner; // owner -> global node
            for (std::size_t i = 0; i < sub.local_nodes.size(); ++i) {
                const Index gn = sub.local_nodes[i];
                const auto o = static_cast<int>(
                    node_owner[static_cast<std::size_t>(gn)]);
                if (o != r) by_owner[o].push_back(gn);
            }
            for (auto& [o, nodes] : by_owner) {
                typhon::ExchangeSchedule::Peer recv_peer;
                recv_peer.rank = o;
                typhon::ExchangeSchedule::Peer send_peer;
                send_peer.rank = r;
                for (const Index gn : nodes) {
                    recv_peer.recv_items.push_back(
                        g2l[static_cast<std::size_t>(r)].at(gn));
                    send_peer.send_items.push_back(
                        g2l[static_cast<std::size_t>(o)].at(gn));
                }
                sub.node_schedule.peers.push_back(std::move(recv_peer));
                subs[static_cast<std::size_t>(o)].node_schedule.peers.push_back(
                    std::move(send_peer));
            }
        }
    }

    return subs;
}

} // namespace bookleaf::part
