#include "part/subdomain.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/error.hpp"

namespace bookleaf::part {

Index Subdomain::n_sending_peers(const typhon::ExchangeSchedule& schedule) {
    Index n = 0;
    for (const auto& peer : schedule.peers)
        if (!peer.send_items.empty()) ++n;
    return n;
}

namespace {

/// Sending peers of a fused two-schedule exchange: the union of the two
/// sending peer sets (one coalesced message per union peer).
Index n_union_sending_peers(const typhon::ExchangeSchedule& a,
                            const typhon::ExchangeSchedule& b) {
    std::vector<int> ranks;
    for (const auto* schedule : {&a, &b})
        for (const auto& peer : schedule->peers)
            if (!peer.send_items.empty() &&
                std::find(ranks.begin(), ranks.end(), peer.rank) == ranks.end())
                ranks.push_back(peer.rank);
    return static_cast<Index>(ranks.size());
}

} // namespace

Index Subdomain::n_state_peers() const {
    return n_union_sending_peers(node_schedule, cell_schedule);
}

Index Subdomain::n_owned_nodes() const {
    Index n = 0;
    for (const auto owned : node_owned) n += owned;
    return n;
}

Index Subdomain::messages_per_step(typhon::Packing packing) const {
    const Index node_peers = n_sending_peers(node_schedule);
    const Index cell_peers = n_sending_peers(cell_schedule);
    const Index corner_peers = n_sending_peers(corner_schedule);
    if (packing == typhon::Packing::coalesced)
        return n_state_peers() + corner_peers;
    return node_exchange_fields * node_peers +
           cell_exchange_fields * cell_peers +
           corner_exchange_fields * corner_peers;
}

Index Subdomain::messages_per_remap(typhon::Packing packing,
                                    int n_mesh_exchanges) const {
    const Index node_peers = n_sending_peers(node_schedule);
    const Index cell_peers = n_sending_peers(cell_schedule);
    const Index grad_peers = n_sending_peers(remap_cell_schedule);
    const Index dual_peers = n_sending_peers(remap_dual_schedule);
    if (packing == typhon::Packing::coalesced)
        // Pre-remap fused state refresh + per-sync target-mesh halo +
        // gradient halo + fused {cell results, dual-mesh results}.
        return n_state_peers() + n_mesh_exchanges * node_peers + grad_peers +
               n_union_sending_peers(cell_schedule, remap_dual_schedule);
    return (node_exchange_fields * node_peers + cell_exchange_fields * cell_peers) +
           n_mesh_exchanges * remap_mesh_fields * node_peers +
           remap_grad_fields * grad_peers +
           (remap_cell_result_fields * cell_peers +
            remap_dual_fields * dual_peers);
}

std::vector<Subdomain> decompose(const mesh::Mesh& global,
                                 const std::vector<Index>& part, int n_parts) {
    const Index n_cells = global.n_cells();
    const Index n_nodes = global.n_nodes();
    util::require(part.size() == static_cast<std::size_t>(n_cells),
                  "decompose: partition size mismatch");

    // Node owners: min part over incident cells.
    std::vector<Index> node_owner(static_cast<std::size_t>(n_nodes),
                                  std::numeric_limits<Index>::max());
    for (Index n = 0; n < n_nodes; ++n)
        for (const Index c : global.node_cells.row(n))
            node_owner[static_cast<std::size_t>(n)] =
                std::min(node_owner[static_cast<std::size_t>(n)],
                         part[static_cast<std::size_t>(c)]);

    std::vector<Subdomain> subs(static_cast<std::size_t>(n_parts));

    // Owned cell lists (ascending global id by construction).
    std::vector<std::vector<Index>> owned(static_cast<std::size_t>(n_parts));
    for (Index c = 0; c < n_cells; ++c)
        owned[static_cast<std::size_t>(part[static_cast<std::size_t>(c)])]
            .push_back(c);

    // Global cell -> owner-local id (owned cells are numbered first).
    std::vector<Index> owner_local(static_cast<std::size_t>(n_cells));
    for (int r = 0; r < n_parts; ++r)
        for (std::size_t i = 0; i < owned[static_cast<std::size_t>(r)].size(); ++i)
            owner_local[static_cast<std::size_t>(
                owned[static_cast<std::size_t>(r)][i])] = static_cast<Index>(i);

    for (int r = 0; r < n_parts; ++r) {
        auto& sub = subs[static_cast<std::size_t>(r)];
        sub.rank = r;
        const auto& own = owned[static_cast<std::size_t>(r)];
        sub.n_owned_cells = static_cast<Index>(own.size());

        // Ghost layer: node-adjacent foreign cells.
        std::vector<Index> ghosts;
        {
            std::vector<std::uint8_t> seen(static_cast<std::size_t>(n_cells), 0);
            for (const Index c : own) seen[static_cast<std::size_t>(c)] = 1;
            for (const Index c : own)
                for (int k = 0; k < corners_per_cell; ++k) {
                    const Index node = global.cn(c, k);
                    for (const Index adj : global.node_cells.row(node))
                        if (!seen[static_cast<std::size_t>(adj)]) {
                            seen[static_cast<std::size_t>(adj)] = 1;
                            ghosts.push_back(adj);
                        }
                }
        }
        std::sort(ghosts.begin(), ghosts.end(),
                  [&](Index a, Index b) {
                      const Index pa = part[static_cast<std::size_t>(a)];
                      const Index pb = part[static_cast<std::size_t>(b)];
                      return pa != pb ? pa < pb : a < b;
                  });

        sub.local_cells = own;
        sub.local_cells.insert(sub.local_cells.end(), ghosts.begin(),
                               ghosts.end());

        // Local nodes: union of the local cells' nodes, sorted by global id.
        {
            std::vector<Index> nodes;
            nodes.reserve(sub.local_cells.size() * corners_per_cell);
            for (const Index c : sub.local_cells)
                for (int k = 0; k < corners_per_cell; ++k)
                    nodes.push_back(global.cn(c, k));
            std::sort(nodes.begin(), nodes.end());
            nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
            sub.local_nodes = std::move(nodes);
        }

        std::unordered_map<Index, Index> node_g2l;
        node_g2l.reserve(sub.local_nodes.size());
        for (std::size_t i = 0; i < sub.local_nodes.size(); ++i)
            node_g2l.emplace(sub.local_nodes[i], static_cast<Index>(i));

        // Local mesh.
        auto& lm = sub.local;
        lm.x.resize(sub.local_nodes.size());
        lm.y.resize(sub.local_nodes.size());
        lm.node_bc.resize(sub.local_nodes.size());
        sub.node_owned.resize(sub.local_nodes.size());
        for (std::size_t i = 0; i < sub.local_nodes.size(); ++i) {
            const auto g = static_cast<std::size_t>(sub.local_nodes[i]);
            lm.x[i] = global.x[g];
            lm.y[i] = global.y[g];
            lm.node_bc[i] = global.node_bc[g];
            sub.node_owned[i] = node_owner[g] == r ? 1 : 0;
        }
        lm.cell_nodes.reserve(sub.local_cells.size() * corners_per_cell);
        lm.cell_region.reserve(sub.local_cells.size());
        for (const Index c : sub.local_cells) {
            for (int k = 0; k < corners_per_cell; ++k)
                lm.cell_nodes.push_back(node_g2l.at(global.cn(c, k)));
            lm.cell_region.push_back(
                global.cell_region[static_cast<std::size_t>(c)]);
        }
        mesh::build_connectivity(lm);

        // --- boundary/interior overlap sets --------------------------------
        // Nodes incident to a ghost cell: their assembly needs exchanged
        // corner forces, and their kinematic state is refreshed by the
        // node halo (a non-owned node is always incident to a ghost cell:
        // the foreign owned cell that makes it non-owned is node-adjacent
        // to an owned cell here, hence in the ghost layer).
        const auto n_local_cells = static_cast<Index>(sub.local_cells.size());
        const auto n_local_nodes = static_cast<Index>(sub.local_nodes.size());
        std::vector<std::uint8_t> node_near_ghost(
            static_cast<std::size_t>(n_local_nodes), 0);
        for (Index lc = sub.n_owned_cells; lc < n_local_cells; ++lc)
            for (int k = 0; k < corners_per_cell; ++k)
                node_near_ghost[static_cast<std::size_t>(lm.cn(lc, k))] = 1;
        for (Index ln = 0; ln < n_local_nodes; ++ln)
            (node_near_ghost[static_cast<std::size_t>(ln)] ? sub.boundary_nodes
                                                           : sub.interior_nodes)
                .push_back(ln);

        // Cells whose own nodes touch a ghost cell ("near"), then widen by
        // one face ring: the viscosity limiter of a cell reads the nodes
        // of its face neighbours, so a cell is interior only if neither it
        // nor any face neighbour is near. Ghost cells are near by
        // construction (they share their own nodes).
        std::vector<std::uint8_t> near(static_cast<std::size_t>(n_local_cells),
                                       0);
        for (Index lc = 0; lc < n_local_cells; ++lc)
            for (int k = 0; k < corners_per_cell; ++k)
                if (node_near_ghost[static_cast<std::size_t>(lm.cn(lc, k))]) {
                    near[static_cast<std::size_t>(lc)] = 1;
                    break;
                }
        for (Index lc = 0; lc < n_local_cells; ++lc) {
            bool boundary = near[static_cast<std::size_t>(lc)];
            for (int k = 0; !boundary && k < corners_per_cell; ++k) {
                const Index nb = lm.neighbor(lc, k);
                if (nb != no_index && near[static_cast<std::size_t>(nb)])
                    boundary = true;
            }
            (boundary ? sub.boundary_cells : sub.interior_cells).push_back(lc);
        }

        // --- distributed remap stencil metadata -----------------------------
        // Faces the remap evaluates here: incident to an owned cell. Faces
        // deeper in the ghost layer are either ghost-interior or phantom
        // (locally boundary, globally interior — a ghost cell's far face);
        // their fluxes arrive through remap_dual_schedule instead. Note a
        // face of an owned cell can never be phantom: its far neighbour is
        // node-adjacent to the owned cell and hence in the ghost layer, so
        // right == no_index on a remap face means a true global boundary.
        for (std::size_t fi = 0; fi < lm.faces.size(); ++fi) {
            const auto& f = lm.faces[fi];
            if (f.left < sub.n_owned_cells ||
                (f.right != no_index && f.right < sub.n_owned_cells))
                sub.remap_faces.push_back(static_cast<Index>(fi));
        }

        // Nodes with the complete global cell stencil present locally: the
        // nodal (dual-mesh) remap is evaluated exactly for these. Every
        // node of an owned cell qualifies (the ghost layer is
        // node-complete around owned cells); fringe nodes do not.
        for (Index ln = 0; ln < n_local_nodes; ++ln) {
            const auto gn =
                static_cast<std::size_t>(sub.local_nodes[static_cast<std::size_t>(ln)]);
            if (lm.node_cells.row(ln).size() ==
                global.node_cells.row(static_cast<Index>(gn)).size())
                sub.remap_nodes.push_back(ln);
        }

        // Corner gather CSR in *global* deposition order: local numbering
        // is owned-first, so a boundary node's local node_corners row
        // visits its corners in a different order than the global mesh;
        // re-sorting each row by global flat corner id makes every
        // corner->node gather sum in exactly the serial order (the bitwise
        // dist == serial contract). Entries stay local flat ids.
        sub.assembly_corners = lm.node_corners;
        for (Index ln = 0; ln < n_local_nodes; ++ln) {
            const auto lo = static_cast<std::size_t>(
                sub.assembly_corners.offsets[static_cast<std::size_t>(ln)]);
            const auto hi = static_cast<std::size_t>(
                sub.assembly_corners.offsets[static_cast<std::size_t>(ln) + 1]);
            std::sort(sub.assembly_corners.items.begin() +
                          static_cast<std::ptrdiff_t>(lo),
                      sub.assembly_corners.items.begin() +
                          static_cast<std::ptrdiff_t>(hi),
                      [&](Index a, Index b) {
                          const Index ga =
                              sub.local_cells[static_cast<std::size_t>(
                                  a / corners_per_cell)] * corners_per_cell +
                              a % corners_per_cell;
                          const Index gb =
                              sub.local_cells[static_cast<std::size_t>(
                                  b / corners_per_cell)] * corners_per_cell +
                              b % corners_per_cell;
                          return ga < gb;
                      });
        }
    }

    // --- exchange schedules --------------------------------------------------
    // Cell/corner: ghost cells of r owned by o; both sides ordered by global
    // cell id (the ghost list is already (owner, id)-sorted).
    for (int r = 0; r < n_parts; ++r) {
        auto& sub = subs[static_cast<std::size_t>(r)];
        std::map<int, std::vector<std::pair<Index, Index>>> by_owner; // owner -> (global, local)
        for (Index lc = sub.n_owned_cells;
             lc < static_cast<Index>(sub.local_cells.size()); ++lc) {
            const Index gc = sub.local_cells[static_cast<std::size_t>(lc)];
            by_owner[static_cast<int>(part[static_cast<std::size_t>(gc)])]
                .emplace_back(gc, lc);
        }
        // A ghost is *face-adjacent* when it shares a face with an owned
        // cell — the only ghosts whose gradients any owned face flux reads.
        const auto face_adjacent = [&](Index lc) {
            for (int k = 0; k < corners_per_cell; ++k) {
                const Index nb = sub.local.neighbor(lc, k);
                if (nb != no_index && nb < sub.n_owned_cells) return true;
            }
            return false;
        };
        for (auto& [o, items] : by_owner) {
            // items already sorted by global id (ghost ordering).
            typhon::ExchangeSchedule::Peer recv_peer;
            recv_peer.rank = o;
            typhon::ExchangeSchedule::Peer send_peer;
            send_peer.rank = r;
            typhon::ExchangeSchedule::Peer recv_corner;
            recv_corner.rank = o;
            typhon::ExchangeSchedule::Peer send_corner;
            send_corner.rank = r;
            typhon::ExchangeSchedule::Peer recv_grad;
            recv_grad.rank = o;
            typhon::ExchangeSchedule::Peer send_grad;
            send_grad.rank = r;
            for (const auto& [gc, lc] : items) {
                recv_peer.recv_items.push_back(lc);
                const Index ol = owner_local[static_cast<std::size_t>(gc)];
                send_peer.send_items.push_back(ol);
                for (int k = 0; k < corners_per_cell; ++k) {
                    recv_corner.recv_items.push_back(lc * corners_per_cell + k);
                    send_corner.send_items.push_back(ol * corners_per_cell + k);
                }
                if (face_adjacent(lc)) {
                    recv_grad.recv_items.push_back(lc);
                    send_grad.send_items.push_back(ol);
                }
            }
            sub.cell_schedule.peers.push_back(std::move(recv_peer));
            sub.corner_schedule.peers.push_back(std::move(recv_corner));
            subs[static_cast<std::size_t>(o)].cell_schedule.peers.push_back(
                std::move(send_peer));
            subs[static_cast<std::size_t>(o)].corner_schedule.peers.push_back(
                std::move(send_corner));
            // Entries stay pairwise consistent because both sides are
            // derived from the same face_adjacent(lc) classification (the
            // ghost side decides; empty entries post no message).
            if (!recv_grad.recv_items.empty()) {
                sub.remap_cell_schedule.peers.push_back(std::move(recv_grad));
                subs[static_cast<std::size_t>(o)]
                    .remap_cell_schedule.peers.push_back(std::move(send_grad));
            }
        }
    }

    // The dual-mesh remap exchange pairs the same ghost corners as the
    // per-step corner-force halo; keep it as its own schedule (see the
    // header) now that both sides of every corner peering exist.
    for (auto& sub : subs) sub.remap_dual_schedule = sub.corner_schedule;

    // Node schedule: ghost nodes of r receive from their owner o. Both
    // sides ordered by global node id.
    {
        // Per-rank local node lookup.
        std::vector<std::unordered_map<Index, Index>> g2l(
            static_cast<std::size_t>(n_parts));
        for (int r = 0; r < n_parts; ++r) {
            auto& m = g2l[static_cast<std::size_t>(r)];
            const auto& ln = subs[static_cast<std::size_t>(r)].local_nodes;
            m.reserve(ln.size());
            for (std::size_t i = 0; i < ln.size(); ++i)
                m.emplace(ln[i], static_cast<Index>(i));
        }
        for (int r = 0; r < n_parts; ++r) {
            auto& sub = subs[static_cast<std::size_t>(r)];
            std::map<int, std::vector<Index>> by_owner; // owner -> global node
            for (std::size_t i = 0; i < sub.local_nodes.size(); ++i) {
                const Index gn = sub.local_nodes[i];
                const auto o = static_cast<int>(
                    node_owner[static_cast<std::size_t>(gn)]);
                if (o != r) by_owner[o].push_back(gn);
            }
            for (auto& [o, nodes] : by_owner) {
                typhon::ExchangeSchedule::Peer recv_peer;
                recv_peer.rank = o;
                typhon::ExchangeSchedule::Peer send_peer;
                send_peer.rank = r;
                for (const Index gn : nodes) {
                    recv_peer.recv_items.push_back(
                        g2l[static_cast<std::size_t>(r)].at(gn));
                    send_peer.send_items.push_back(
                        g2l[static_cast<std::size_t>(o)].at(gn));
                }
                sub.node_schedule.peers.push_back(std::move(recv_peer));
                subs[static_cast<std::size_t>(o)].node_schedule.peers.push_back(
                    std::move(send_peer));
            }
        }
    }

    return subs;
}

} // namespace bookleaf::part
