/// \file distributed.cpp
/// Distributed (flat-MPI analogue) driver. Each typhon rank owns a
/// subdomain and runs the Lagrangian predictor-corrector locally; ghost
/// data is refreshed with the paper's two halo exchanges per step:
///   1. before GETQ: node positions/velocities + ghost internal energy as
///      one fused wire exchange (the dependent thermodynamic state is
///      rebuilt locally);
///   2. before GETACC: ghost corner forces, so the nodal assembly at every
///      node of an owned cell is complete and exact.
/// The timestep is the global min-reduction of the owned-cell dt. On
/// remap-due steps of ALE/Eulerian decks, remap() below runs the
/// ghost-aware ALE step after the corrector.
///
/// Two schedules implement the step. The *blocking* schedule is the
/// paper's: reduce, exchange, compute, exchange, compute. The *overlap*
/// schedule (default, Options::overlap) posts each exchange through
/// typhon's request layer and runs the interior work — cells whose
/// stencils see no halo-refreshed data, nodes whose assembly reads no
/// ghost corner — while the messages are in flight; only the boundary
/// finish waits. The dt min-reduction is likewise posted nonblocking
/// before the pre-step halo and finished just before the predictor
/// consumes dt. Because every kernel piece involved is per-item
/// independent, the exchanged bytes are identical and the reduction is
/// rank-order deterministic, the two schedules are bitwise identical at
/// every rank count — for either halo wire format (Options::packing:
/// one coalesced message per peer, or the per-field ablation).

#include "dist/distributed.hpp"

#include <array>
#include <span>
#include <string>

#include "geom/geometry.hpp"
#include "part/subdomain.hpp"
#include "typhon/typhon.hpp"
#include "util/error.hpp"

namespace bookleaf::dist {

namespace {

/// Copy the step-start snapshot the predictor/corrector rewind to.
void snapshot(const hydro::Context& ctx, hydro::State& s) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

/// Rebuild the dependent state (geometry cache, volumes, density, EoS) *of
/// the ghost cells only* after their x/y/ein were refreshed — owned cells
/// ended the previous step exact (every node of an owned cell has its full
/// assembly locally), so recomputing them would be pure waste and would
/// skew the per-kernel profile against the serial driver. Ghost cells are
/// contiguous after the owned block.
void rebuild_ghost_state(const hydro::Context& ctx, hydro::State& s,
                         const part::Subdomain& sub) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    for (Index c = sub.n_owned_cells; c < mesh.n_cells(); ++c) {
        const auto quad = geom::gather(mesh, s.x, s.y, c);
        s.cache_geometry(c, quad);
        const auto ci = static_cast<std::size_t>(c);
        const Real vol = geom::quad_area(quad);
        if (vol <= 0.0)
            throw util::Error("dist: non-positive ghost volume in cell " +
                              std::to_string(c));
        s.volume[ci] = vol;
        s.char_len[ci] = geom::char_length(quad);
        const auto cv = geom::corner_volumes(quad);
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnvol[hydro::State::cidx(c, k)] = cv[static_cast<std::size_t>(k)];
        s.rho[ci] = s.cell_mass[ci] / std::max(vol, tiny);
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    }
}

// ---------------------------------------------------------------------------
// Blocking schedule (ablation baseline, Options::overlap = false)
// ---------------------------------------------------------------------------

/// The fused pre-step state halo: node kinematics {x, y, u, v} and ghost
/// internal energy {ein} as ONE wire exchange — where a peer appears in
/// both schedules (the common case: a rank owning our ghost cells
/// usually owns nodes of ours too) the coalesced packing ships a single
/// message carrying both groups' slices, collapsing the per-step
/// pre-exchange from two messages per peer to one.
[[nodiscard]] typhon::PendingExchange
start_state_halo(hydro::State& s, typhon::Comm& comm,
                 const part::Subdomain& sub, typhon::Packing packing) {
    // Field lists and the Subdomain wire-format metadata must change
    // together (messages_per_step's accounting rests on them).
    static_assert(part::Subdomain::node_exchange_fields == 4 &&
                  part::Subdomain::cell_exchange_fields == 1);
    const std::array<typhon::FieldGroup, 2> groups{
        typhon::FieldGroup{&sub.node_schedule, {std::span<Real>(s.x),
                                                std::span<Real>(s.y),
                                                std::span<Real>(s.u),
                                                std::span<Real>(s.v)}},
        typhon::FieldGroup{&sub.cell_schedule, {std::span<Real>(s.ein)}}};
    return typhon::exchange_start(comm, groups, 100, packing);
}

/// Pre-step halo: refresh ghost node kinematics and ghost internal energy,
/// then rebuild the ghost dependent state.
void refresh_ghosts(const hydro::Context& ctx, hydro::State& s,
                    typhon::Comm& comm, const part::Subdomain& sub,
                    typhon::Packing packing) {
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        auto halo = start_state_halo(s, comm, sub, packing);
        halo.finish();
    }
    rebuild_ghost_state(ctx, s, sub);
}

/// One rank's Lagrangian step with the mid-step corner-force exchange.
/// Mirrors hydro::lagstep exactly, with typhon traffic inserted where the
/// paper's Algorithm 1 places it.
void dist_lagstep(const hydro::Context& ctx, hydro::State& s, Real dt,
                  typhon::Comm& comm, const part::Subdomain& sub,
                  typhon::Packing packing) {
    snapshot(ctx, s);
    const Real half_dt = Real(0.5) * dt;

    // --- predictor ---------------------------------------------------------
    hydro::getq(ctx, s);
    hydro::getforce(ctx, s);
    hydro::getgeom(ctx, s, s.u0, s.v0, half_dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.u0, s.v0, half_dt);
    hydro::getpc(ctx, s);

    // --- corrector ----------------------------------------------------------
    hydro::getq(ctx, s);
    hydro::getforce(ctx, s);
    {
        // Pre-acceleration halo: ghost corner forces from their owners.
        // After this, the gather at any node of an owned cell sees exactly
        // the corner forces a serial run would.
        static_assert(part::Subdomain::corner_exchange_fields == 2);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        typhon::exchange_all(comm, sub.corner_schedule, {s.fx, s.fy}, 200,
                             packing);
    }
    hydro::getacc(ctx, s, dt);
    hydro::getgeom(ctx, s, s.ubar, s.vbar, dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.ubar, s.vbar, dt);
    hydro::getpc(ctx, s);
}

// ---------------------------------------------------------------------------
// Overlap schedule (default): halo exchanges hide behind interior work
// ---------------------------------------------------------------------------

/// One step with both exchanges overlapped, plus the dt reduction. Covers
/// getdt's reduce + refresh + lagstep: the global min-reduce of
/// `dt_local` is posted nonblocking *before* the pre-step state exchange
/// (the exchanged bytes do not depend on dt) and finished only when the
/// predictor is about to consume dt; the state exchange spans into the
/// predictor and the corner-force exchange spans the corrector's interior
/// viscosity/force/assembly work.
/// Note on profiles: each subrange piece charges the profiler separately,
/// so per-kernel *call counts* differ from the blocking schedule (e.g.
/// two getq calls per sweep instead of one, halo split into post and
/// finish scopes, reduce split into post and wait); the wall-second
/// buckets remain comparable and are what the overlap ablation reports.
hydro::ClampedDt overlap_step(const hydro::Context& ctx, hydro::State& s,
                              Real dt_local, bool reduce, Real t, Real t_end,
                              typhon::Comm& comm, const part::Subdomain& sub,
                              typhon::Packing packing) {
    const std::span<const Index> interior(sub.interior_cells);
    const std::span<const Index> boundary(sub.boundary_cells);

    // --- dt reduce + pre-step state halo, overlapped with the interior
    // predictor. The reduce is posted first: every rank's contribution is
    // this step's local controller value, the result is the deterministic
    // rank-ordered min (bitwise what the blocking allreduce returns), and
    // nothing before the first half_dt use reads dt — so the collective
    // rides for free under the state exchange. Sends pack owned values,
    // so they post immediately; interior cells read no halo node, no
    // ghost state and no snapshot array, so running their predictor
    // viscosity/forces here computes bit-for-bit what the blocking
    // schedule computes after the exchange.
    typhon::CollRequest dt_reduce;
    if (reduce) {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::reduce);
        dt_reduce = comm.iallreduce_min(dt_local);
    }
    typhon::PendingExchange state_halo;
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        state_halo = start_state_halo(s, comm, sub, packing);
    }
    hydro::getq(ctx, s, interior);
    hydro::getforce(ctx, s, interior);
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        state_halo.finish();
    }
    rebuild_ghost_state(ctx, s, sub);
    snapshot(ctx, s);

    // The predictor consumes dt from here on: finish the reduce, then
    // apply the t_end clamp to the *used* dt only (the unclamped value
    // stays the growth reference for the next step).
    Real dt_global = dt_local;
    if (reduce) {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::reduce);
        dt_global = dt_reduce.wait();
    }
    const auto step_dt = hydro::clamp_to_t_end(t, dt_global, t_end);

    const Real dt = step_dt.used;
    const Real half_dt = Real(0.5) * dt;

    // --- predictor boundary finish + whole-range remainder ------------------
    hydro::getq(ctx, s, boundary);
    hydro::getforce(ctx, s, boundary);
    hydro::getgeom(ctx, s, s.u0, s.v0, half_dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.u0, s.v0, half_dt);
    hydro::getpc(ctx, s);

    // --- corrector: corner-force halo behind interior work ------------------
    // Boundary cells first (they contain every corner the peers need),
    // post the sends, then interior cells and the interior nodal assembly
    // proceed while the messages fly; only the boundary assembly waits.
    hydro::getq(ctx, s, boundary);
    hydro::getforce(ctx, s, boundary);
    typhon::PendingExchange corner_halo;
    {
        static_assert(part::Subdomain::corner_exchange_fields == 2);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        corner_halo = typhon::exchange_start(comm, sub.corner_schedule,
                                             {s.fx, s.fy}, 200, packing);
    }
    hydro::getq(ctx, s, interior);
    hydro::getforce(ctx, s, interior);
    hydro::getacc_assemble(ctx, s, sub.interior_nodes);
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        corner_halo.finish();
    }
    hydro::getacc_assemble(ctx, s, sub.boundary_nodes);
    hydro::getacc_advance(ctx, s, dt);
    hydro::getgeom(ctx, s, s.ubar, s.vbar, dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.ubar, s.vbar, dt);
    hydro::getpc(ctx, s);
    return step_dt;
}

// ---------------------------------------------------------------------------
// Checkpoint/restart: owned-slice gather to a writer rank, global restore
// through part::decompose
// ---------------------------------------------------------------------------

/// Tag of the checkpoint gather (the step halos use 100/200, the remap
/// 300..340; repeated checkpoints reuse the channel FIFO in step order).
constexpr int ckpt_tag = 500;

/// Pack this rank's owned entities for the checkpoint gather: the
/// snapshot's node fields (x, y, u, v, node_mass), cell fields (rho, ein,
/// q, cell_mass) and corner field (cnmass), field-major, each field's
/// owned items in ascending local (= ascending global) order.
std::vector<Real> pack_owned(const part::Subdomain& sub,
                             const hydro::State& s) {
    std::vector<Real> out;
    const auto owned_nodes = static_cast<std::size_t>(sub.n_owned_nodes());
    const auto owned_cells = static_cast<std::size_t>(sub.n_owned_cells);
    out.reserve(5 * owned_nodes + (4 + corners_per_cell) * owned_cells);
    const auto nodes = [&](const std::vector<Real>& f) {
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln)
            if (sub.node_owned[ln]) out.push_back(f[ln]);
    };
    nodes(s.x);
    nodes(s.y);
    nodes(s.u);
    nodes(s.v);
    nodes(s.node_mass);
    const auto cells = [&](const std::vector<Real>& f) {
        for (std::size_t lc = 0; lc < owned_cells; ++lc) out.push_back(f[lc]);
    };
    cells(s.rho);
    cells(s.ein);
    cells(s.q);
    cells(s.cell_mass);
    for (Index lc = 0; lc < sub.n_owned_cells; ++lc)
        for (int k = 0; k < corners_per_cell; ++k)
            out.push_back(s.cnmass[hydro::State::cidx(lc, k)]);
    return out;
}

/// Scatter one rank's packed owned slice into the global snapshot arrays
/// (the exact inverse of pack_owned, routed through the subdomain's
/// local->global maps).
void unpack_owned(const part::Subdomain& sub, std::span<const Real> payload,
                  ckpt::Snapshot& snap) {
    std::size_t pos = 0;
    const auto nodes = [&](std::vector<Real>& f) {
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln)
            if (sub.node_owned[ln])
                f[static_cast<std::size_t>(sub.local_nodes[ln])] =
                    payload[pos++];
    };
    nodes(snap.x);
    nodes(snap.y);
    nodes(snap.u);
    nodes(snap.v);
    nodes(snap.node_mass);
    const auto cells = [&](std::vector<Real>& f) {
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc)
            f[static_cast<std::size_t>(
                sub.local_cells[static_cast<std::size_t>(lc)])] =
                payload[pos++];
    };
    cells(snap.rho);
    cells(snap.ein);
    cells(snap.q);
    cells(snap.cell_mass);
    for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
        const Index gc = sub.local_cells[static_cast<std::size_t>(lc)];
        for (int k = 0; k < corners_per_cell; ++k)
            snap.cnmass[hydro::State::cidx(gc, k)] = payload[pos++];
    }
    util::require(pos == payload.size(),
                  "dist: checkpoint gather payload size mismatch");
}

/// Write one distributed checkpoint: every rank ships its owned slice to
/// rank 0 through the typhon point-to-point layer; rank 0 assembles the
/// global arrays (ascending entity order, the serial layout) and writes
/// the file. Because owned fields are bitwise-serial, the bytes on disk
/// are identical to a serial run's checkpoint at the same step — at any
/// rank count.
void write_distributed_checkpoint(
    typhon::Comm& comm, const std::vector<part::Subdomain>& subs,
    const mesh::Mesh& global, std::uint64_t mesh_hash, const hydro::State& s,
    const part::Subdomain& sub, Real t, Real dt_ref, std::int64_t steps,
    const ckpt::Config& cfg, std::vector<std::string>& written,
    util::Profiler& profiler) {
    const util::ScopedTimer timer(profiler, util::Kernel::other);
    comm.send(0, ckpt_tag, pack_owned(sub, s));
    if (comm.rank() != 0) return;

    ckpt::Snapshot snap;
    snap.mesh_hash = mesh_hash;
    snap.steps = steps;
    snap.t = t;
    snap.dt = dt_ref;
    const auto nn = static_cast<std::size_t>(global.n_nodes());
    const auto nc = static_cast<std::size_t>(global.n_cells());
    snap.x.resize(nn);
    snap.y.resize(nn);
    snap.u.resize(nn);
    snap.v.resize(nn);
    snap.node_mass.resize(nn);
    snap.rho.resize(nc);
    snap.ein.resize(nc);
    snap.q.resize(nc);
    snap.cell_mass.resize(nc);
    snap.cnmass.resize(nc * corners_per_cell);
    for (int r = 0; r < comm.size(); ++r) {
        const auto payload = comm.recv(r, ckpt_tag);
        unpack_owned(subs[static_cast<std::size_t>(r)], payload, snap);
    }
    const auto path = cfg.path_for(steps);
    ckpt::write(path, snap);
    written.push_back(path);
}

/// Restore one rank's subdomain state from the global snapshot: owned and
/// ghost entities alike take the global (bitwise-serial) values — exactly
/// the bytes a pre-step ghost refresh would land — then the derived state
/// is rebuilt with the same per-cell sequence the serial restore uses.
void restore_rank_state(const part::Subdomain& sub,
                        const eos::MaterialTable& materials,
                        const ckpt::Snapshot& snap, hydro::State& s) {
    for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
        const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
        s.x[ln] = snap.x[gn];
        s.y[ln] = snap.y[gn];
        s.u[ln] = snap.u[gn];
        s.v[ln] = snap.v[gn];
        s.node_mass[ln] = snap.node_mass[gn];
    }
    for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
        const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
        s.rho[lc] = snap.rho[gc];
        s.ein[lc] = snap.ein[gc];
        s.q[lc] = snap.q[gc];
        s.cell_mass[lc] = snap.cell_mass[gc];
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnmass[hydro::State::cidx(static_cast<Index>(lc), k)] =
                snap.cnmass[hydro::State::cidx(static_cast<Index>(gc), k)];
    }
    ckpt::rebuild_derived(sub.local, materials, s);
    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

} // namespace

void remap(const hydro::Context& ctx, hydro::State& s, const ale::Options& ale,
           ale::Workspace& w, typhon::Comm& comm, const part::Subdomain& sub,
           typhon::Packing packing) {
    // 1. Pre-remap state refresh: the corrector left ghost kinematics and
    // energy stale (fringe assemblies are incomplete); the remap reads
    // them everywhere, so run the same fused halo + ghost rebuild the
    // next step would.
    refresh_ghosts(ctx, s, comm, sub, packing);

    // 2. Target mesh. ALE smoothing needs one node-position halo per
    // Jacobi pass (and one after the clamp): a fringe node's local
    // adjacency is incomplete, so its owner's value overwrites it before
    // the next pass reads it. Eulerian targets are exact locally.
    if (ale.mode == ale::Mode::ale) {
        static_assert(part::Subdomain::remap_mesh_fields == 2);
        ale::alegetmesh(ctx, s, ale, w,
                        [&](std::vector<Real>& xt, std::vector<Real>& yt) {
                            const util::ScopedTimer timer(*ctx.profiler,
                                                          util::Kernel::halo);
                            typhon::exchange_all(comm, sub.node_schedule,
                                                 {xt, yt}, 300, packing);
                        });
    } else {
        ale::alegetmesh(ctx, s, ale, w);
    }

    // 3. Swept volumes on the faces this rank remaps (owned-incident; a
    // ghost cell's far face is phantom here and is never evaluated), then
    // gradients for owned cells and the ghost-gradient exchange: limited
    // reconstruction at a boundary cell reads its face-adjacent ghosts'
    // gradients, which only their owner can compute with a full stencil.
    ale::alegetfvol(ctx, s, w, sub.remap_faces);
    ale::aleadvect_centroids(ctx, s, w);
    ale::aleadvect_gradients(ctx, s, ale, w, sub.n_owned_cells);
    {
        static_assert(part::Subdomain::remap_grad_fields == 4);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        typhon::exchange_all(comm, sub.remap_cell_schedule,
                             {w.grad_rho_x, w.grad_rho_y, w.grad_e_x,
                              w.grad_e_y},
                             320, packing);
    }

    // 4. Fluxes on the remap faces; cell and dual sweeps over owned cells.
    ale::aleadvect_fluxes(ctx, s, ale, w, sub.remap_faces);
    ale::aleadvect_cells(ctx, s, w, sub.n_owned_cells);
    ale::aleadvect_dual(ctx, s, w, sub.n_owned_cells);

    // 5. Fused result exchange: ghost cell results {cell_mass, ein} (the
    // next steps' ghost rebuild divides cell_mass by volume) and ghost
    // dual-mesh results {cnmass, dflux} — the acceleration assembly reads
    // ghost corner masses every step, and the nodal remap below needs the
    // dual fluxes of ghost cells, which their far faces make impossible
    // to compute here.
    {
        static_assert(part::Subdomain::remap_cell_result_fields == 2 &&
                      part::Subdomain::remap_dual_fields == 2);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        const std::array<typhon::FieldGroup, 2> groups{
            typhon::FieldGroup{&sub.cell_schedule,
                               {std::span<Real>(s.cell_mass),
                                std::span<Real>(s.ein)}},
            typhon::FieldGroup{&sub.remap_dual_schedule,
                               {std::span<Real>(s.cnmass),
                                std::span<Real>(w.dflux)}}};
        typhon::exchange_all(comm, groups, 340, packing);
    }

    // 6. Nodal (dual-mesh) remap over the stencil-complete nodes, then
    // move everything onto the target mesh and rebuild the dependent
    // state — all inputs are exact on every local entity by now, so the
    // full-range update is bitwise-serial even on ghosts.
    ale::aleadvect_nodes(ctx, s, w, sub.remap_nodes);
    ale::aleupdate(ctx, s, w);
}

namespace {

/// The shared driver body. Exactly one of `snap` (restart) or the four
/// initial-condition fields (fresh run) is non-null.
Result run_impl(const mesh::Mesh& global, const eos::MaterialTable& materials,
                const Options& opts, const ckpt::Snapshot* snap,
                const std::vector<Real>* rho_ic,
                const std::vector<Real>* ein_ic, const std::vector<Real>* u_ic,
                const std::vector<Real>* v_ic) {
    const std::vector<Index> part =
        opts.partitioner ? opts.partitioner(global, opts.n_ranks)
                         : part::rcb(global, opts.n_ranks);
    const auto subs = part::decompose(global, part, opts.n_ranks);

    // The writer rank needs the global mesh identity; hash it once here
    // rather than per checkpoint.
    const std::uint64_t global_hash =
        opts.checkpoint.enabled() ? ckpt::mesh_hash(global) : 0;

    Result result;
    result.rho.resize(static_cast<std::size_t>(global.n_cells()));
    result.ein.resize(result.rho.size());
    result.u.resize(static_cast<std::size_t>(global.n_nodes()));
    result.v.resize(result.u.size());
    result.x.resize(result.u.size());
    result.y.resize(result.u.size());
    result.profiles.resize(static_cast<std::size_t>(opts.n_ranks));
    std::vector<util::Profiler> profilers(
        static_cast<std::size_t>(opts.n_ranks));
    std::vector<int> steps_per_rank(static_cast<std::size_t>(opts.n_ranks), 0);
    std::vector<Real> t_per_rank(static_cast<std::size_t>(opts.n_ranks), 0.0);

    result.traffic = typhon::run(opts.n_ranks, [&](typhon::Comm& comm) {
        const auto& sub = subs[static_cast<std::size_t>(comm.rank())];
        auto& profiler = profilers[static_cast<std::size_t>(comm.rank())];

        hydro::State s = hydro::allocate(sub.local);
        if (snap != nullptr) {
            restore_rank_state(sub, materials, *snap, s);
        } else {
            for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
                const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
                s.rho[lc] = (*rho_ic)[gc];
                s.ein[lc] = (*ein_ic)[gc];
            }
            for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
                const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
                s.u[ln] = (*u_ic)[gn];
                s.v[ln] = (*v_ic)[gn];
            }
            hydro::initialise(sub.local, materials, s);
        }

        hydro::Context ctx;
        ctx.mesh = &sub.local;
        ctx.materials = &materials;
        ctx.opts = opts.hydro;
        ctx.profiler = &profiler;
        ctx.dt_cells = sub.n_owned_cells; // dt over owned cells only
        // Corner gathers in serial deposition order (bitwise == serial).
        ctx.assembly_corners = &sub.assembly_corners;

        ale::Workspace ale_work;
        const bool remap_enabled = opts.ale.mode != ale::Mode::lagrange;

        // Clock: fresh runs start at zero; restarts continue the
        // snapshot's clock (so the remap cadence, the `steps > 0` getdt
        // gate and max_steps all behave as in the serial restore).
        Real t = snap != nullptr ? snap->t : 0.0;
        // Growth reference for getdt: always the *unclamped* controller
        // value. Feeding a t_end-clamped dt back would growth-limit the
        // next step from an arbitrarily tiny final step (the continuation
        // bug fixed in core::Hydro::step_clamped — same pattern here).
        Real dt_prev =
            snap != nullptr ? snap->dt : opts.hydro.dt_initial;
        int steps = snap != nullptr ? static_cast<int>(snap->steps) : 0;
        while (t < opts.t_end * (Real(1.0) - eps) && steps < opts.max_steps) {
            const Real t_before = t;
            const Real dt_local =
                steps > 0 ? hydro::getdt(ctx, s, dt_prev).dt
                          : opts.hydro.dt_initial;

            if (opts.overlap) {
                // The reduce is posted inside the step, concurrent with
                // the pre-step state halo.
                const auto step_dt =
                    overlap_step(ctx, s, dt_local, steps > 0, t, opts.t_end,
                                 comm, sub, opts.packing);
                dt_prev = step_dt.unclamped;
                t += step_dt.used;
            } else {
                Real dt_global = dt_local;
                if (steps > 0) {
                    const util::ScopedTimer timer(profiler,
                                                  util::Kernel::reduce);
                    dt_global = comm.allreduce_min(dt_local);
                }
                const auto step_dt =
                    hydro::clamp_to_t_end(t, dt_global, opts.t_end);
                dt_prev = step_dt.unclamped;
                refresh_ghosts(ctx, s, comm, sub, opts.packing);
                dist_lagstep(ctx, s, step_dt.used, comm, sub, opts.packing);
                t += step_dt.used;
            }
            // Remap cadence as in core::Hydro::step_clamped: Eulerian
            // every step, ALE every `frequency` steps (1-based).
            if (remap_enabled &&
                (opts.ale.mode == ale::Mode::eulerian ||
                 (steps + 1) % opts.ale.frequency == 0))
                remap(ctx, s, opts.ale, ale_work, comm, sub, opts.packing);
            ++steps;
            // Checkpoint cadence: every rank evaluates the same trigger
            // (t and steps are globally identical), so the gather below
            // is collective. The cadence only ever fires after completed
            // natural steps — a checkpointing run is bitwise the run
            // without checkpoints.
            if (opts.checkpoint.enabled() &&
                opts.checkpoint.due(steps, t_before, t)) {
                write_distributed_checkpoint(
                    comm, subs, global, global_hash, s, sub, t, dt_prev,
                    steps, opts.checkpoint, result.checkpoints, profiler);
                if (opts.checkpoint.halt_after) break;
            }
        }

        // Gather owned fields into the global result. Each global cell has
        // exactly one owner and each global node one owning rank, so the
        // writes are disjoint across rank threads.
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
            const auto gc =
                static_cast<std::size_t>(sub.local_cells[static_cast<std::size_t>(lc)]);
            result.rho[gc] = s.rho[static_cast<std::size_t>(lc)];
            result.ein[gc] = s.ein[static_cast<std::size_t>(lc)];
        }
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
            if (!sub.node_owned[ln]) continue;
            const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
            result.u[gn] = s.u[ln];
            result.v[gn] = s.v[ln];
            result.x[gn] = s.x[ln];
            result.y[gn] = s.y[ln];
        }
        steps_per_rank[static_cast<std::size_t>(comm.rank())] = steps;
        t_per_rank[static_cast<std::size_t>(comm.rank())] = t;
    });

    result.steps = steps_per_rank[0];
    result.t_final = t_per_rank[0];
    for (int r = 0; r < opts.n_ranks; ++r)
        result.profiles[static_cast<std::size_t>(r)] =
            profilers[static_cast<std::size_t>(r)].snapshot();
    return result;
}

/// Shared argument checks of both run() entry points.
void check_options(const Options& opts) {
    util::require(opts.n_ranks >= 1, "dist::run: n_ranks must be >= 1");
    util::require(opts.ale.mode == ale::Mode::lagrange ||
                      opts.ale.frequency >= 1,
                  "dist::run: ale frequency must be >= 1");
}

} // namespace

Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const std::vector<Real>& rho, const std::vector<Real>& ein,
           const std::vector<Real>& u, const std::vector<Real>& v,
           const Options& opts) {
    check_options(opts);
    util::require(rho.size() == static_cast<std::size_t>(global.n_cells()) &&
                      ein.size() == rho.size(),
                  "dist::run: cell field size mismatch");
    util::require(u.size() == static_cast<std::size_t>(global.n_nodes()) &&
                      v.size() == u.size(),
                  "dist::run: node field size mismatch");
    return run_impl(global, materials, opts, nullptr, &rho, &ein, &u, &v);
}

Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const ckpt::Snapshot& snapshot, const Options& opts) {
    check_options(opts);
    if (snapshot.mesh_hash != ckpt::mesh_hash(global))
        throw util::Error(
            "dist::run: checkpoint/deck mismatch — the snapshot was written "
            "for a different mesh");
    util::require(snapshot.n_nodes() == global.n_nodes() &&
                      snapshot.n_cells() == global.n_cells(),
                  "dist::run: snapshot entity counts disagree with the mesh");
    return run_impl(global, materials, opts, &snapshot, nullptr, nullptr,
                    nullptr, nullptr);
}

bool bitwise_equal(const Result& a, const Result& b) {
    return a.steps == b.steps && a.rho == b.rho && a.ein == b.ein &&
           a.u == b.u && a.v == b.v && a.x == b.x && a.y == b.y;
}

} // namespace bookleaf::dist
