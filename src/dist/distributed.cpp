/// \file distributed.cpp
/// Distributed (flat-MPI analogue) driver. Each typhon rank owns a
/// subdomain and runs the Lagrangian predictor-corrector locally; ghost
/// data is refreshed with the paper's two halo exchanges per step:
///   1. before GETQ: node positions/velocities + ghost internal energy as
///      one fused wire exchange (the dependent thermodynamic state is
///      rebuilt locally);
///   2. before GETACC: ghost corner forces, so the nodal assembly at every
///      node of an owned cell is complete and exact.
/// The timestep is the global min-reduction of the owned-cell dt. On
/// remap-due steps of ALE/Eulerian decks, remap() below runs the
/// ghost-aware ALE step after the corrector.
///
/// Two schedules implement the step. The *blocking* schedule is the
/// paper's: reduce, exchange, compute, exchange, compute. The *overlap*
/// schedule (default, Options::overlap) posts each exchange through
/// typhon's request layer and runs the interior work — cells whose
/// stencils see no halo-refreshed data, nodes whose assembly reads no
/// ghost corner — while the messages are in flight; only the boundary
/// finish waits. The dt min-reduction is likewise posted nonblocking
/// before the pre-step halo and finished just before the predictor
/// consumes dt. Because every kernel piece involved is per-item
/// independent, the exchanged bytes are identical and the reduction is
/// rank-order deterministic, the two schedules are bitwise identical at
/// every rank count — for either halo wire format (Options::packing:
/// one coalesced message per peer, or the per-field ablation).

#include "dist/distributed.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>

#include "geom/geometry.hpp"
#include "obs/critical_path.hpp"
#include "par/task_graph.hpp"
#include "perfmodel/calibrate.hpp"
#include "part/subdomain.hpp"
#include "typhon/fault.hpp"
#include "typhon/typhon.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace bookleaf::dist {

namespace {

/// Copy the step-start snapshot the predictor/corrector rewind to.
void snapshot(const hydro::Context& ctx, hydro::State& s) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

/// Rebuild the dependent state (geometry cache, volumes, density, EoS) *of
/// the ghost cells only* after their x/y/ein were refreshed — owned cells
/// ended the previous step exact (every node of an owned cell has its full
/// assembly locally), so recomputing them would be pure waste and would
/// skew the per-kernel profile against the serial driver. Ghost cells are
/// contiguous after the owned block.
void rebuild_ghost_state(const hydro::Context& ctx, hydro::State& s,
                         const part::Subdomain& sub) {
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
    // Strict (throwing) on a non-positive ghost volume — except under the
    // health guards, where a tangled geometry must propagate quietly to
    // the post-corrector vote so every rank reaches the collective retry
    // decision instead of one rank dying mid-step.
    hydro::rebuild_cells(*ctx.mesh, *ctx.materials, s, sub.n_owned_cells,
                         ctx.mesh->n_cells(), /*with_rho=*/true,
                         /*strict=*/!ctx.opts.guard.enabled, "dist ghost");
}

// ---------------------------------------------------------------------------
// Blocking schedule (ablation baseline, Options::overlap = false)
// ---------------------------------------------------------------------------

/// The fused pre-step state halo: node kinematics {x, y, u, v} and ghost
/// internal energy {ein} as ONE wire exchange — where a peer appears in
/// both schedules (the common case: a rank owning our ghost cells
/// usually owns nodes of ours too) the coalesced packing ships a single
/// message carrying both groups' slices, collapsing the per-step
/// pre-exchange from two messages per peer to one.
[[nodiscard]] typhon::PendingExchange
start_state_halo(hydro::State& s, typhon::Comm& comm,
                 const part::Subdomain& sub, typhon::Packing packing) {
    // Field lists and the Subdomain wire-format metadata must change
    // together (messages_per_step's accounting rests on them).
    static_assert(part::Subdomain::node_exchange_fields == 4 &&
                  part::Subdomain::cell_exchange_fields == 1);
    const std::array<typhon::FieldGroup, 2> groups{
        typhon::FieldGroup{&sub.node_schedule, {std::span<Real>(s.x),
                                                std::span<Real>(s.y),
                                                std::span<Real>(s.u),
                                                std::span<Real>(s.v)}},
        typhon::FieldGroup{&sub.cell_schedule, {std::span<Real>(s.ein)}}};
    return typhon::exchange_start(comm, groups, 100, packing);
}

/// Pre-step halo: refresh ghost node kinematics and ghost internal energy,
/// then rebuild the ghost dependent state.
void refresh_ghosts(const hydro::Context& ctx, hydro::State& s,
                    typhon::Comm& comm, const part::Subdomain& sub,
                    typhon::Packing packing) {
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        typhon::PendingExchange halo;
        {
            const util::ScopedTimer pack(*ctx.profiler,
                                         util::Kernel::halo_pack);
            halo = start_state_halo(s, comm, sub, packing);
        }
        halo.finish(ctx.profiler);
    }
    rebuild_ghost_state(ctx, s, sub);
}

/// One rank's Lagrangian step with the mid-step corner-force exchange.
/// Mirrors hydro::lagstep exactly, with typhon traffic inserted where the
/// paper's Algorithm 1 places it.
void dist_lagstep(const hydro::Context& ctx, hydro::State& s, Real dt,
                  typhon::Comm& comm, const part::Subdomain& sub,
                  typhon::Packing packing) {
    snapshot(ctx, s);
    const Real half_dt = Real(0.5) * dt;

    // --- predictor ---------------------------------------------------------
    hydro::getq(ctx, s);
    hydro::getforce(ctx, s);
    hydro::getgeom(ctx, s, s.u0, s.v0, half_dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.u0, s.v0, half_dt);
    hydro::getpc(ctx, s);

    // --- corrector ----------------------------------------------------------
    hydro::getq(ctx, s);
    hydro::getforce(ctx, s);
    {
        // Pre-acceleration halo: ghost corner forces from their owners.
        // After this, the gather at any node of an owned cell sees exactly
        // the corner forces a serial run would.
        static_assert(part::Subdomain::corner_exchange_fields == 2);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        typhon::PendingExchange corners;
        {
            const util::ScopedTimer pack(*ctx.profiler,
                                         util::Kernel::halo_pack);
            corners = typhon::exchange_start(comm, sub.corner_schedule,
                                             {s.fx, s.fy}, 200, packing);
        }
        corners.finish(ctx.profiler);
    }
    hydro::getacc(ctx, s, dt);
    hydro::getgeom(ctx, s, s.ubar, s.vbar, dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.ubar, s.vbar, dt);
    hydro::getpc(ctx, s);
}

// ---------------------------------------------------------------------------
// Overlap schedule (default): halo exchanges hide behind interior work
// ---------------------------------------------------------------------------

/// One step with both exchanges overlapped, plus the dt reduction. Covers
/// getdt's reduce + refresh + lagstep: the global min-reduce of
/// `dt_local` is posted nonblocking *before* the pre-step state exchange
/// (the exchanged bytes do not depend on dt) and finished only when the
/// predictor is about to consume dt; the state exchange spans into the
/// predictor and the corner-force exchange spans the corrector's interior
/// viscosity/force/assembly work.
/// Note on profiles: each subrange piece charges the profiler separately,
/// so per-kernel *call counts* differ from the blocking schedule (e.g.
/// two getq calls per sweep instead of one, halo split into post and
/// finish scopes, reduce split into post and wait); the wall-second
/// buckets remain comparable and are what the overlap ablation reports.
hydro::ClampedDt overlap_step(const hydro::Context& ctx, hydro::State& s,
                              Real dt_local, bool reduce, Real t, Real t_end,
                              typhon::Comm& comm, const part::Subdomain& sub,
                              typhon::Packing packing, Real& regrow_limit) {
    const std::span<const Index> interior(sub.interior_cells);
    const std::span<const Index> boundary(sub.boundary_cells);

    // --- dt reduce + pre-step state halo, overlapped with the interior
    // predictor. The reduce is posted first: every rank's contribution is
    // this step's local controller value, the result is the deterministic
    // rank-ordered min (bitwise what the blocking allreduce returns), and
    // nothing before the first half_dt use reads dt — so the collective
    // rides for free under the state exchange. Sends pack owned values,
    // so they post immediately; interior cells read no halo node, no
    // ghost state and no snapshot array, so running their predictor
    // viscosity/forces here computes bit-for-bit what the blocking
    // schedule computes after the exchange.
    typhon::CollRequest dt_reduce;
    if (reduce) {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::reduce);
        dt_reduce = comm.iallreduce_min(dt_local);
    }
    typhon::PendingExchange state_halo;
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        const util::ScopedTimer pack(*ctx.profiler, util::Kernel::halo_pack);
        state_halo = start_state_halo(s, comm, sub, packing);
    }
    hydro::getq(ctx, s, interior);
    hydro::getforce(ctx, s, interior);
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        state_halo.finish(ctx.profiler);
    }
    rebuild_ghost_state(ctx, s, sub);
    snapshot(ctx, s);

    // The predictor consumes dt from here on: finish the reduce, then
    // apply the t_end clamp to the *used* dt only (the unclamped value
    // stays the growth reference for the next step).
    Real dt_global = dt_local;
    if (reduce) {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::reduce);
        const util::ScopedTimer wait(*ctx.profiler, util::Kernel::reduce_wait);
        dt_global = dt_reduce.wait();
    }
    // Health-guard re-growth ceiling, applied to the *reduced* controller
    // value — the exact serial sequence (core::Hydro::step_clamped),
    // evaluated identically on every rank because the reduced dt and the
    // limit are globally agreed quantities.
    if (reduce && regrow_limit > 0.0) {
        if (dt_global > regrow_limit) {
            dt_global = regrow_limit;
            regrow_limit *= ctx.opts.guard.regrow_cap;
        } else {
            regrow_limit = 0.0;
        }
    }
    const auto step_dt = hydro::clamp_to_t_end(t, dt_global, t_end);

    const Real dt = step_dt.used;
    const Real half_dt = Real(0.5) * dt;

    // --- predictor boundary finish + whole-range remainder ------------------
    hydro::getq(ctx, s, boundary);
    hydro::getforce(ctx, s, boundary);
    hydro::getgeom(ctx, s, s.u0, s.v0, half_dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.u0, s.v0, half_dt);
    hydro::getpc(ctx, s);

    // --- corrector: corner-force halo behind interior work ------------------
    // Boundary cells first (they contain every corner the peers need),
    // post the sends, then interior cells and the interior nodal assembly
    // proceed while the messages fly; only the boundary assembly waits.
    hydro::getq(ctx, s, boundary);
    hydro::getforce(ctx, s, boundary);
    typhon::PendingExchange corner_halo;
    {
        static_assert(part::Subdomain::corner_exchange_fields == 2);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        const util::ScopedTimer pack(*ctx.profiler, util::Kernel::halo_pack);
        corner_halo = typhon::exchange_start(comm, sub.corner_schedule,
                                             {s.fx, s.fy}, 200, packing);
    }
    hydro::getq(ctx, s, interior);
    hydro::getforce(ctx, s, interior);
    hydro::getacc_assemble(ctx, s, sub.interior_nodes);
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        corner_halo.finish(ctx.profiler);
    }
    hydro::getacc_assemble(ctx, s, sub.boundary_nodes);
    hydro::getacc_advance(ctx, s, dt);
    hydro::getgeom(ctx, s, s.ubar, s.vbar, dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.ubar, s.vbar, dt);
    hydro::getpc(ctx, s);
    return step_dt;
}

// ---------------------------------------------------------------------------
// Checkpoint/restart: owned-slice gather to a writer rank, global restore
// through part::decompose
// ---------------------------------------------------------------------------

/// Tag of the checkpoint gather (the step halos use 100/200, the remap
/// 300..340; repeated checkpoints reuse the channel FIFO in step order).
constexpr int ckpt_tag = 500;

/// Tag of the end-of-run telemetry gather (same every-rank-sends-to-0
/// pattern as the checkpoint gather, once per run).
constexpr int telemetry_tag = 501;

/// Tag of the in-run live-window stream: every rank sends one compact
/// WindowRecord to rank 0 each time a monitoring window closes, rank 0
/// drains the channel opportunistically (posted irecvs polled at the top
/// of its step loop) and blocks the channel dry after its step loop ends
/// — the blocking drain promotes fault-held messages, so delay plans
/// cannot strand the stream past Hub::drained().
constexpr int live_tag = 502;

/// Pack this rank's owned entities for the checkpoint gather: the
/// snapshot's node fields (x, y, u, v, node_mass), cell fields (rho, ein,
/// q, cell_mass) and corner field (cnmass), field-major, each field's
/// owned items in ascending local (= ascending global) order.
std::vector<Real> pack_owned(const part::Subdomain& sub,
                             const hydro::State& s) {
    std::vector<Real> out;
    const auto owned_nodes = static_cast<std::size_t>(sub.n_owned_nodes());
    const auto owned_cells = static_cast<std::size_t>(sub.n_owned_cells);
    out.reserve(5 * owned_nodes + (4 + corners_per_cell) * owned_cells);
    const auto nodes = [&](std::span<const Real> f) {
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln)
            if (sub.node_owned[ln]) out.push_back(f[ln]);
    };
    nodes(s.x);
    nodes(s.y);
    nodes(s.u);
    nodes(s.v);
    nodes(s.node_mass);
    const auto cells = [&](std::span<const Real> f) {
        for (std::size_t lc = 0; lc < owned_cells; ++lc) out.push_back(f[lc]);
    };
    cells(s.rho);
    cells(s.ein);
    cells(s.q);
    cells(s.cell_mass);
    for (Index lc = 0; lc < sub.n_owned_cells; ++lc)
        for (int k = 0; k < corners_per_cell; ++k)
            out.push_back(s.cnmass[hydro::State::cidx(lc, k)]);
    return out;
}

/// Scatter one rank's packed owned slice into the global snapshot arrays
/// (the exact inverse of pack_owned, routed through the subdomain's
/// local->global maps).
void unpack_owned(const part::Subdomain& sub, std::span<const Real> payload,
                  ckpt::Snapshot& snap) {
    std::size_t pos = 0;
    const auto nodes = [&](std::vector<Real>& f) {
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln)
            if (sub.node_owned[ln])
                f[static_cast<std::size_t>(sub.local_nodes[ln])] =
                    payload[pos++];
    };
    nodes(snap.x);
    nodes(snap.y);
    nodes(snap.u);
    nodes(snap.v);
    nodes(snap.node_mass);
    const auto cells = [&](std::vector<Real>& f) {
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc)
            f[static_cast<std::size_t>(
                sub.local_cells[static_cast<std::size_t>(lc)])] =
                payload[pos++];
    };
    cells(snap.rho);
    cells(snap.ein);
    cells(snap.q);
    cells(snap.cell_mass);
    for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
        const Index gc = sub.local_cells[static_cast<std::size_t>(lc)];
        for (int k = 0; k < corners_per_cell; ++k)
            snap.cnmass[hydro::State::cidx(gc, k)] = payload[pos++];
    }
    util::require(pos == payload.size(),
                  "dist: checkpoint gather payload size mismatch");
}

/// Assemble one global snapshot: every rank ships its owned slice to
/// rank 0 through the typhon point-to-point layer; rank 0 assembles the
/// global arrays (ascending entity order, the serial layout) and returns
/// the snapshot — other ranks return nullopt. Because owned fields are
/// bitwise-serial, the assembled snapshot is identical to the one a
/// serial run would capture at the same step — at any rank count. One
/// gather serves both consumers: the on-disk checkpoint cadence and the
/// supervisor's in-memory rollback ring.
std::optional<ckpt::Snapshot> gather_snapshot(
    typhon::Comm& comm, const std::vector<part::Subdomain>& subs,
    const mesh::Mesh& global, std::uint64_t mesh_hash, const hydro::State& s,
    const part::Subdomain& sub, Real t, Real dt_ref, Real regrow,
    std::int64_t steps, util::Profiler& profiler) {
    const util::ScopedTimer timer(profiler, util::Kernel::other);
    comm.send(0, ckpt_tag, pack_owned(sub, s));
    if (comm.rank() != 0) return std::nullopt;

    ckpt::Snapshot snap;
    snap.mesh_hash = mesh_hash;
    snap.steps = steps;
    snap.t = t;
    snap.dt = dt_ref;
    snap.regrow = regrow;
    const auto nn = static_cast<std::size_t>(global.n_nodes());
    const auto nc = static_cast<std::size_t>(global.n_cells());
    snap.x.resize(nn);
    snap.y.resize(nn);
    snap.u.resize(nn);
    snap.v.resize(nn);
    snap.node_mass.resize(nn);
    snap.rho.resize(nc);
    snap.ein.resize(nc);
    snap.q.resize(nc);
    snap.cell_mass.resize(nc);
    snap.cnmass.resize(nc * corners_per_cell);
    for (int r = 0; r < comm.size(); ++r) {
        const auto payload = comm.recv(r, ckpt_tag);
        unpack_owned(subs[static_cast<std::size_t>(r)], payload, snap);
    }
    return snap;
}

/// Restore one rank's subdomain state from the global snapshot: owned and
/// ghost entities alike take the global (bitwise-serial) values — exactly
/// the bytes a pre-step ghost refresh would land — then the derived state
/// is rebuilt with the same per-cell sequence the serial restore uses.
void restore_rank_state(const part::Subdomain& sub,
                        const eos::MaterialTable& materials,
                        const ckpt::Snapshot& snap, hydro::State& s) {
    for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
        const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
        s.x[ln] = snap.x[gn];
        s.y[ln] = snap.y[gn];
        s.u[ln] = snap.u[gn];
        s.v[ln] = snap.v[gn];
        s.node_mass[ln] = snap.node_mass[gn];
    }
    for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
        const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
        s.rho[lc] = snap.rho[gc];
        s.ein[lc] = snap.ein[gc];
        s.q[lc] = snap.q[gc];
        s.cell_mass[lc] = snap.cell_mass[gc];
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnmass[hydro::State::cidx(static_cast<Index>(lc), k)] =
                snap.cnmass[hydro::State::cidx(static_cast<Index>(gc), k)];
    }
    ckpt::rebuild_derived(sub.local, materials, s);
    s.x0 = s.x;
    s.y0 = s.y;
    s.u0 = s.u;
    s.v0 = s.v;
    s.ein0 = s.ein;
}

/// Remap phases 3b-4 as a task graph (per-rank pool + taskgraph schedule):
/// the ghost-gradient exchange finish becomes a main-thread graph node, so
/// *interior* face fluxes — both sides owned, gradients locally exact —
/// compute while the exchange is in flight, and only the *frontier* face
/// blocks (those reading a ghost gradient) are released by the finish.
/// Cell and dual sweeps join per-block as soon as their own four faces'
/// flux blocks are done. Bitwise identical to the blocking sequence: the
/// interior/frontier split only reorders per-face-independent work, the
/// prelude zero-fill is the same bytes the blocking overloads assign, and
/// every task writes disjoint slots.
void remap_flux_graph(const hydro::Context& ctx, hydro::State& s,
                      const ale::Options& ale, ale::Workspace& w,
                      typhon::Comm& comm, const part::Subdomain& sub,
                      typhon::Packing packing) {
    const auto& mesh = *ctx.mesh;
    const Index n_owned = sub.n_owned_cells;

    // Task bodies run the serial kernel paths (no nested pool dispatch).
    hydro::Context body = ctx;
    body.exec.pool = nullptr;

    // Split the remap faces: a frontier face touches a ghost cell, so its
    // donor reconstruction may read an exchanged gradient; interior faces
    // read locally-computed gradients only. Boundary faces have no right
    // cell and classify by their left cell alone.
    std::vector<Index> interior, frontier;
    interior.reserve(sub.remap_faces.size());
    for (const Index f : sub.remap_faces) {
        const auto& face = mesh.faces[static_cast<std::size_t>(f)];
        const bool ghost = face.left >= n_owned ||
                           (face.right != no_index && face.right >= n_owned);
        (ghost ? frontier : interior).push_back(f);
    }

    // Prelude: the exact zero state the blocking overloads assign (ghost
    // dflux slots the result exchange does not cover must read zero, as
    // they do on the blocking schedule).
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::aleadvect);
        w.mflux.assign(mesh.faces.size(), 0.0);
        w.eflux.assign(mesh.faces.size(), 0.0);
        w.dflux.assign(
            static_cast<std::size_t>(mesh.n_cells()) * corners_per_cell, 0.0);
    }

    // Post the ghost-gradient exchange; its finish is a graph node below.
    static_assert(part::Subdomain::remap_grad_fields == 4);
    typhon::PendingExchange grads;
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        const util::ScopedTimer pack(*ctx.profiler, util::Kernel::halo_pack);
        grads = typhon::exchange_start(comm, sub.remap_cell_schedule,
                                       {w.grad_rho_x, w.grad_rho_y,
                                        w.grad_e_x, w.grad_e_y},
                                       320, packing);
    }

    par::TaskGraph graph;
    const par::TaskId t_finish = graph.add(
        [&] {
            const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
            grads.finish(ctx.profiler);
        },
        /*main_thread=*/true, // comm endpoints are per-rank-thread
        util::Kernel::halo);

    // Flux tasks over chunks of the face lists; face -> task for the
    // cell/dual dependencies.
    std::vector<par::TaskId> task_of_face(mesh.faces.size(), par::TaskId{-1});
    const Index n_faces = static_cast<Index>(sub.remap_faces.size());
    const Index fchunk = par::detail::resolve_task_block(ctx.exec, n_faces);
    auto add_flux_chunks = [&](const std::vector<Index>& faces,
                               bool needs_ghosts) {
        for (std::size_t at = 0; at < faces.size();
             at += static_cast<std::size_t>(fchunk)) {
            const auto len = std::min(static_cast<std::size_t>(fchunk),
                                      faces.size() - at);
            const std::span<const Index> chunk(faces.data() + at, len);
            const par::TaskId t = graph.add(
                [&, chunk] {
                    ale::aleadvect_fluxes_chunk(body, s, ale, w, chunk);
                },
                false, util::Kernel::ale_fluxes);
            if (needs_ghosts) graph.depend(t, t_finish);
            for (const Index f : chunk)
                task_of_face[static_cast<std::size_t>(f)] = t;
        }
    };
    add_flux_chunks(interior, /*needs_ghosts=*/false);
    add_flux_chunks(frontier, /*needs_ghosts=*/true);

    // Cell and dual sweeps over owned-cell blocks, each gated only on the
    // flux tasks of its cells' own faces (unlisted faces keep the prelude
    // zero and gate nothing).
    std::atomic<long> floored{0};
    const Index cblock = par::detail::resolve_task_block(ctx.exec, n_owned);
    std::vector<par::TaskId> deps;
    for (Index begin = 0; begin < n_owned; begin += cblock) {
        const Index end = std::min(n_owned, begin + cblock);
        deps.clear();
        for (Index c = begin; c < end; ++c)
            for (int k = 0; k < corners_per_cell; ++k) {
                const par::TaskId t =
                    task_of_face[static_cast<std::size_t>(mesh.face_of(c, k))];
                if (t >= 0) deps.push_back(t);
            }
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        const par::TaskId t_cells = graph.add(
            [&, begin, end] { ale::aleadvect_cells(body, s, w, begin, end); },
            false, util::Kernel::ale_cells);
        const par::TaskId t_dual = graph.add(
            [&, begin, end] {
                ale::aleadvect_dual(body, s, w, begin, end, floored);
            },
            false, util::Kernel::ale_dual);
        for (const par::TaskId d : deps) {
            graph.depend(t_cells, d);
            graph.depend(t_dual, d);
        }
    }

    graph.run(ctx.exec, ctx.profiler, ctx.graph_log);
    if (floored.load() > 0)
        util::log_warn("aleadvect: floored ", floored.load(),
                       " negative corner masses");
}

} // namespace

void remap(const hydro::Context& ctx, hydro::State& s, const ale::Options& ale,
           ale::Workspace& w, typhon::Comm& comm, const part::Subdomain& sub,
           typhon::Packing packing) {
    // 1. Pre-remap state refresh: the corrector left ghost kinematics and
    // energy stale (fringe assemblies are incomplete); the remap reads
    // them everywhere, so run the same fused halo + ghost rebuild the
    // next step would.
    refresh_ghosts(ctx, s, comm, sub, packing);

    // 2. Target mesh. ALE smoothing needs one node-position halo per
    // Jacobi pass (and one after the clamp): a fringe node's local
    // adjacency is incomplete, so its owner's value overwrites it before
    // the next pass reads it. Eulerian targets are exact locally.
    if (ale.mode == ale::Mode::ale) {
        static_assert(part::Subdomain::remap_mesh_fields == 2);
        ale::alegetmesh(ctx, s, ale, w,
                        [&](std::vector<Real>& xt, std::vector<Real>& yt) {
                            const util::ScopedTimer timer(*ctx.profiler,
                                                          util::Kernel::halo);
                            typhon::PendingExchange mesh_halo;
                            {
                                const util::ScopedTimer pack(
                                    *ctx.profiler, util::Kernel::halo_pack);
                                mesh_halo = typhon::exchange_start(
                                    comm, sub.node_schedule, {xt, yt}, 300,
                                    packing);
                            }
                            mesh_halo.finish(ctx.profiler);
                        });
    } else {
        ale::alegetmesh(ctx, s, ale, w);
    }

    // 3. Swept volumes on the faces this rank remaps (owned-incident; a
    // ghost cell's far face is phantom here and is never evaluated), then
    // gradients for owned cells and the ghost-gradient exchange: limited
    // reconstruction at a boundary cell reads its face-adjacent ghosts'
    // gradients, which only their owner can compute with a full stencil.
    ale::alegetfvol(ctx, s, w, sub.remap_faces);
    ale::aleadvect_centroids(ctx, s, w);
    ale::aleadvect_gradients(ctx, s, ale, w, sub.n_owned_cells);

    if (ctx.exec.threaded() &&
        ctx.exec.schedule == par::Schedule::taskgraph) {
        // 4. (graph) The exchange finish releases only the ghost-touching
        // face blocks; interior fluxes and per-block cell/dual sweeps
        // overlap the in-flight messages. Bitwise == the blocking branch.
        remap_flux_graph(ctx, s, ale, w, comm, sub, packing);
    } else {
        {
            static_assert(part::Subdomain::remap_grad_fields == 4);
            const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
            typhon::PendingExchange grads;
            {
                const util::ScopedTimer pack(*ctx.profiler,
                                             util::Kernel::halo_pack);
                grads = typhon::exchange_start(comm, sub.remap_cell_schedule,
                                               {w.grad_rho_x, w.grad_rho_y,
                                                w.grad_e_x, w.grad_e_y},
                                               320, packing);
            }
            grads.finish(ctx.profiler);
        }

        // 4. Fluxes on the remap faces; cell and dual sweeps over owned
        // cells.
        ale::aleadvect_fluxes(ctx, s, ale, w, sub.remap_faces);
        ale::aleadvect_cells(ctx, s, w, sub.n_owned_cells);
        ale::aleadvect_dual(ctx, s, w, sub.n_owned_cells);
    }

    // 5. Fused result exchange: ghost cell results {cell_mass, ein} (the
    // next steps' ghost rebuild divides cell_mass by volume) and ghost
    // dual-mesh results {cnmass, dflux} — the acceleration assembly reads
    // ghost corner masses every step, and the nodal remap below needs the
    // dual fluxes of ghost cells, which their far faces make impossible
    // to compute here.
    {
        static_assert(part::Subdomain::remap_cell_result_fields == 2 &&
                      part::Subdomain::remap_dual_fields == 2);
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        const std::array<typhon::FieldGroup, 2> groups{
            typhon::FieldGroup{&sub.cell_schedule,
                               {std::span<Real>(s.cell_mass),
                                std::span<Real>(s.ein)}},
            typhon::FieldGroup{&sub.remap_dual_schedule,
                               {std::span<Real>(s.cnmass),
                                std::span<Real>(w.dflux)}}};
        typhon::PendingExchange results;
        {
            const util::ScopedTimer pack(*ctx.profiler,
                                         util::Kernel::halo_pack);
            results = typhon::exchange_start(comm, groups, 340, packing);
        }
        results.finish(ctx.profiler);
    }

    // 6. Nodal (dual-mesh) remap over the stencil-complete nodes, then
    // move everything onto the target mesh and rebuild the dependent
    // state — all inputs are exact on every local entity by now, so the
    // full-range update is bitwise-serial even on ghosts.
    ale::aleadvect_nodes(ctx, s, w, sub.remap_nodes);
    ale::aleupdate(ctx, s, w);
}

namespace {

/// The shared driver body. Exactly one of `snap` (restart) or the four
/// initial-condition fields (fresh run) is non-null.
///
/// Supervised mode (opts.supervise) wraps the whole run in an attempt
/// loop: a typhon::RankFailure — an injected kill or any real rank error —
/// rolls the run back to the newest ring snapshot (or the restart
/// snapshot, or the initial conditions), drops the failed rank, and
/// re-runs partition/decompose/typhon::run on the survivors. Because
/// snapshots are rank-count invariant and the owned-entity contract is
/// bitwise at any rank count, the recovered result is bitwise identical
/// to an uninterrupted run. Failed attempts leave no residue: every
/// global entity is owned by some rank at every rank count, so the
/// successful attempt's gather overwrites the result arrays completely,
/// and thread-join ordering makes the cross-attempt reuse race-free.
Result run_impl(const mesh::Mesh& global, const eos::MaterialTable& materials,
                const Options& opts, const ckpt::Snapshot* snap,
                const std::vector<Real>* rho_ic,
                const std::vector<Real>* ein_ic, const std::vector<Real>* u_ic,
                const std::vector<Real>* v_ic) {
    const bool supervised = opts.supervise.enabled;
    const bool telemetry = opts.telemetry.active();
    const bool live = opts.telemetry.live_active();
    // Live monitoring host state. The NDJSON stream spans every attempt —
    // the crash trail must include failed ones — and is appended to by
    // the rank-0 driver thread and the watchdog supervisor thread
    // (LiveStream locks internally). stall_count is bumped on the
    // supervisor thread and read after the joins.
    obs::LiveStream live_stream(telemetry ? opts.telemetry.live
                                          : std::string{});
    std::atomic<long> stall_count{0};
    if (live_stream.open()) {
        obs::Json ev;
        ev["event"] = "run_start";
        ev["schema"] = "bookleaf.live/1";
        ev["label"] = opts.telemetry.label;
        ev["n_ranks"] = opts.n_ranks;
        ev["window_steps"] = static_cast<long long>(
            opts.telemetry.window_steps);
        ev["watchdog_factor"] = opts.telemetry.watchdog_factor;
        live_stream.emit(std::move(ev));
    }
    // One epoch for the whole run: recovery attempts land on the same
    // trace timeline, and the run wall clock spans every attempt.
    const auto telemetry_epoch = std::chrono::steady_clock::now();
    const util::Timer run_timer;

    // The writer rank needs the global mesh identity; hash it once here
    // rather than per checkpoint/ring snapshot.
    const std::uint64_t global_hash =
        (opts.checkpoint.enabled() || supervised) ? ckpt::mesh_hash(global)
                                                  : 0;

    Result result;
    result.rho.resize(static_cast<std::size_t>(global.n_cells()));
    result.ein.resize(result.rho.size());
    result.u.resize(static_cast<std::size_t>(global.n_nodes()));
    result.v.resize(result.u.size());
    result.x.resize(result.u.size());
    result.y.resize(result.u.size());

    // Rollback ring: the newest supervised snapshots, oldest evicted.
    // Only the rank-0 thread touches it inside typhon::run; the
    // supervisor reads it after the join (thread-join ordering, no lock).
    std::deque<ckpt::Snapshot> ring;
    const auto ring_capacity =
        static_cast<std::size_t>(std::max(1, opts.supervise.ring_capacity));

    int ranks_now = opts.n_ranks;
    const ckpt::Snapshot* start_snap = snap;
    ckpt::Snapshot rollback; // owns the ring snapshot a recovery resumes from

    for (int attempt = 0;; ++attempt) {
        const std::vector<Index> part =
            opts.partitioner ? opts.partitioner(global, ranks_now)
                             : part::rcb(global, ranks_now);
        const auto subs = part::decompose(global, part, ranks_now);

        std::vector<util::Profiler> profilers(
            static_cast<std::size_t>(ranks_now));
        std::vector<int> steps_per_rank(static_cast<std::size_t>(ranks_now),
                                        0);
        std::vector<Real> t_per_rank(static_cast<std::size_t>(ranks_now), 0.0);

        // Telemetry sinks of this attempt. Trace and critical-path span
        // vectors are host-allocated here; each rank thread attaches its
        // own slot (disjoint writes) and stamps spans against its OWN run
        // epoch — the per-rank epoch offsets travel with the tag-501
        // gather and rank 0 aligns everything onto its timeline below.
        // rank_records and gather_events are written by the rank-0 thread
        // only and read after the join (thread-join ordering, no lock).
        std::vector<std::vector<util::TraceEvent>> traces;
        std::vector<std::vector<obs::CritSpan>> crits;
        if (telemetry && opts.telemetry.want_trace()) {
            traces.resize(static_cast<std::size_t>(ranks_now));
            crits.resize(static_cast<std::size_t>(ranks_now));
        }
        std::vector<obs::RankRecord> rank_records;
        long long gather_events = 0;

        // Live-window state of this attempt. live_windows and the
        // assembler are touched by the rank-0 thread only (read after the
        // join); the watchdog is shared — rank threads bump its step
        // epochs (relaxed atomics), the rank-0 thread stamps window
        // arrivals, and the supervisor thread runs check().
        std::vector<obs::LiveWindow> live_windows;
        std::optional<obs::LiveAssembler> assembler;
        std::optional<obs::Watchdog> watchdog;
        if (live) {
            assembler.emplace(ranks_now);
            if (opts.telemetry.watchdog_factor > 0.0 && ranks_now > 1)
                watchdog.emplace(
                    ranks_now, opts.telemetry.watchdog_factor,
                    static_cast<double>(opts.telemetry.watchdog_grace_ms),
                    opts.telemetry.watchdog_escalate);
        }

        // The fault plan is scripted per attempt: a kill recorded for
        // attempt 0 stays quiet during recovery re-runs. An empty plan
        // never touches the transport hot path (nullptr injector).
        typhon::FaultInjector injector(opts.faults, ranks_now, attempt);
        typhon::FaultInjector* fault =
            opts.faults.empty() ? nullptr : &injector;

        try {
            result.traffic =
                typhon::run(ranks_now, [&](typhon::Comm& comm) {
        const auto& sub = subs[static_cast<std::size_t>(comm.rank())];
        auto& profiler = profilers[static_cast<std::size_t>(comm.rank())];

        // Per-rank run epoch: rank threads start (and stamp their clocks)
        // at slightly different instants, so every sink this rank writes
        // — trace spans, step start times, graph-run spans — is measured
        // against its own origin, and the offset to the shared run epoch
        // ships with the tag-501 gather so rank 0 can align all records
        // onto its own timeline (what a real MPI run must do, since node
        // clocks share no origin).
        const auto rank_epoch = telemetry ? std::chrono::steady_clock::now()
                                          : telemetry_epoch;
        if (telemetry && opts.telemetry.want_trace())
            profiler.set_trace(&traces[static_cast<std::size_t>(comm.rank())],
                               rank_epoch);

        // Per-rank worker pool (the hybrid MPI+OpenMP analogue). Built
        // before the state so the first-touch allocation places pages in
        // the same blocks the threaded kernels sweep.
        std::unique_ptr<par::ThreadPool> pool;
        par::Exec exec;
        exec.schedule = opts.schedule;
        if (opts.n_threads > 1) {
            pool = std::make_unique<par::ThreadPool>(opts.n_threads);
            exec.pool = pool.get();
        }

        hydro::State s = hydro::allocate(sub.local, exec);
        if (start_snap != nullptr) {
            restore_rank_state(sub, materials, *start_snap, s);
        } else {
            for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
                const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
                s.rho[lc] = (*rho_ic)[gc];
                s.ein[lc] = (*ein_ic)[gc];
            }
            for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
                const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
                s.u[ln] = (*u_ic)[gn];
                s.v[ln] = (*v_ic)[gn];
            }
            hydro::initialise(sub.local, materials, s);
        }

        hydro::Context ctx;
        ctx.mesh = &sub.local;
        ctx.materials = &materials;
        ctx.opts = opts.hydro;
        ctx.exec = exec;
        ctx.profiler = &profiler;
        ctx.dt_cells = sub.n_owned_cells; // dt over owned cells only
        // Corner gathers in serial deposition order (bitwise == serial).
        ctx.assembly_corners = &sub.assembly_corners;

        // Task-graph attribution sinks (telemetry only): the remap flux
        // graph appends per-task spans into graph_log; attribute_step
        // drains them into the step record after the physics commits.
        // Null when telemetry is off — graph.run takes the zero-cost path.
        par::GraphRunLog graph_log;
        obs::RankAttribution attrib;
        if (telemetry) {
            graph_log.epoch = rank_epoch;
            ctx.graph_log = &graph_log;
        }

        ale::Workspace ale_work;
        const bool remap_enabled = opts.ale.mode != ale::Mode::lagrange;
        const auto& guard = opts.hydro.guard;
        hydro::StepBackup backup;

        // Clock: fresh runs start at zero; restarts continue the
        // snapshot's clock (so the remap cadence, the `steps > 0` getdt
        // gate and max_steps all behave as in the serial restore).
        Real t = start_snap != nullptr ? start_snap->t : 0.0;
        // Growth reference for getdt: always the *unclamped* controller
        // value. Feeding a t_end-clamped dt back would growth-limit the
        // next step from an arbitrarily tiny final step (the continuation
        // bug fixed in core::Hydro::step_clamped — same pattern here).
        Real dt_prev =
            start_snap != nullptr ? start_snap->dt : opts.hydro.dt_initial;
        Real regrow_limit = start_snap != nullptr ? start_snap->regrow : 0.0;
        int steps = start_snap != nullptr ? static_cast<int>(start_snap->steps)
                                          : 0;
        // Bounded step retention: [telemetry] max_steps caps the records
        // kept in memory; evicted ones fold into an exact aggregate.
        obs::StepRing my_steps(opts.telemetry.max_steps);

        // Live monitoring rank state. Every rank folds its own windows
        // and streams each one to rank 0 on tag 502 the moment it closes
        // (rank 0 sends to itself through the same channel — one
        // discipline, no special case). Rank 0 additionally keeps one
        // posted irecv per peer, drained opportunistically at the top of
        // every step, and hosts the watchdog supervisor thread.
        std::optional<obs::WindowFolder> folder;
        std::vector<obs::WindowRecord> my_windows;
        std::vector<typhon::Request> live_pending;
        std::vector<long> live_received;
        if (live)
            folder.emplace(comm.rank(), opts.telemetry.window_steps,
                           &profiler);
        const auto harvest_window = [&](const std::vector<Real>& payload,
                                        int src) {
            auto w = obs::unpack_window(payload);
            ++live_received[static_cast<std::size_t>(src)];
            if (watchdog) watchdog->note_window(w.rank);
            obs::Json ev;
            ev["event"] = "window";
            ev["attempt"] = attempt;
            ev["record"] = obs::window_json(w);
            live_stream.emit(std::move(ev));
            for (auto& lw : assembler->add(std::move(w))) {
                obs::Json iev;
                iev["event"] = "imbalance";
                iev["attempt"] = attempt;
                iev["window"] = static_cast<long long>(lw.index);
                iev["max_over_mean"] = lw.imbalance.max_over_mean;
                iev["mean_rank_s"] = lw.imbalance.mean_rank_s;
                iev["max_rank_s"] = lw.imbalance.max_rank_s;
                iev["slowest_rank"] = lw.imbalance.slowest_rank;
                live_stream.emit(std::move(iev));
                if (opts.on_window) opts.on_window(lw);
                live_windows.push_back(std::move(lw));
            }
        };
        // Nonblocking drain: harvest whatever has arrived, repost. A
        // posted irecv is a local handle (test() polls the transport), so
        // a request left pending at run end strands nothing.
        const auto drain_live = [&] {
            for (int r = 0; r < comm.size(); ++r) {
                auto& req = live_pending[static_cast<std::size_t>(r)];
                while (req.test()) {
                    harvest_window(req.data(), r);
                    req = comm.irecv(r, live_tag);
                }
            }
        };
        std::optional<obs::WatchdogSession> watch_session;
        if (live && comm.rank() == 0) {
            live_pending.resize(static_cast<std::size_t>(comm.size()));
            live_received.assign(static_cast<std::size_t>(comm.size()), 0);
            for (int r = 0; r < comm.size(); ++r)
                live_pending[static_cast<std::size_t>(r)] =
                    comm.irecv(r, live_tag);
            if (watchdog) {
                const double poll_ms = std::max(
                    static_cast<double>(opts.telemetry.watchdog_grace_ms) /
                        8.0,
                    1.0);
                watch_session.emplace(*watchdog, poll_ms,
                                      [&](const obs::Watchdog::Stall& st) {
                    ++stall_count;
                    obs::Json ev;
                    ev["event"] = "stall";
                    ev["attempt"] = attempt;
                    ev["rank"] = st.rank;
                    ev["last_step"] = static_cast<long long>(st.last_step);
                    ev["windows"] = static_cast<long long>(st.windows);
                    ev["silent_ms"] = st.silent_ms;
                    ev["threshold_ms"] = st.threshold_ms;
                    ev["escalated"] = st.escalated;
                    // The hang diagnostic: every rank's last completed
                    // step plus the transport channels still holding
                    // undelivered (pending or fault-held) messages.
                    obs::Json last = obs::Json::array();
                    for (int r = 0; r < watchdog->n_ranks(); ++r)
                        last.push_back(
                            static_cast<long long>(watchdog->last_step(r)));
                    ev["last_steps"] = std::move(last);
                    obs::Json channels = obs::Json::array();
                    for (const auto& c : comm.backlog()) {
                        obs::Json cj;
                        cj["src"] = c.src;
                        cj["dst"] = c.dst;
                        cj["tag"] = c.tag;
                        cj["pending"] = static_cast<long long>(c.pending);
                        cj["held"] = static_cast<long long>(c.held);
                        channels.push_back(std::move(cj));
                    }
                    ev["backlog"] = std::move(channels);
                    live_stream.emit(std::move(ev));
                    util::log_warn("watchdog: rank ", st.rank,
                                   " silent for ", st.silent_ms,
                                   " ms (threshold ", st.threshold_ms,
                                   " ms), last step ", st.last_step,
                                   st.escalated ? " - escalating" : "");
                });
            }
        }
        while (t < opts.t_end * (Real(1.0) - eps) && steps < opts.max_steps) {
            // Record the step for failure reports and tick the fault
            // plan's kill-at-step trigger.
            comm.set_step(steps);
            // Watchdog progress tick (one relaxed store + one relaxed
            // load) and, on rank 0, the opportunistic tag-502 drain. A
            // poisoned rank — flagged as stalled with escalation enabled —
            // turns its silent hang into an ordinary recoverable failure.
            if (watchdog && watchdog->note_step(comm.rank(), steps))
                throw obs::StallEscalated(comm.rank());
            if (live && comm.rank() == 0) drain_live();
            const auto step_t0 = telemetry
                                     ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point{};
            const Real t_before = t;
            std::string_view dt_reason = "initial";
            Real dt_local = opts.hydro.dt_initial;
            if (steps > 0) {
                const auto dtr = hydro::getdt(ctx, s, dt_prev);
                dt_local = dtr.dt;
                dt_reason = dtr.reason;
            }
            const Real regrow_before = regrow_limit;

            // Loop-top capture for the health-guard rollback — before the
            // ghost refresh, so a retry replays the refresh from restored
            // owned values (the same bytes the first attempt exchanged).
            if (guard.enabled) hydro::capture_step(s, backup);

            Real dt_used;
            bool t_end_clamped = false;
            int retries = 0;
            if (opts.overlap) {
                // The reduce is posted inside the step, concurrent with
                // the pre-step state halo.
                const auto step_dt =
                    overlap_step(ctx, s, dt_local, steps > 0, t, opts.t_end,
                                 comm, sub, opts.packing, regrow_limit);
                dt_prev = step_dt.unclamped;
                dt_used = step_dt.used;
                t_end_clamped = step_dt.used != step_dt.unclamped;
            } else {
                Real dt_global = dt_local;
                if (steps > 0) {
                    const util::ScopedTimer timer(profiler,
                                                  util::Kernel::reduce);
                    const util::ScopedTimer wait(profiler,
                                                 util::Kernel::reduce_wait);
                    dt_global = comm.allreduce_min(dt_local);
                }
                // Re-growth ceiling on the reduced controller value — the
                // serial sequence, identical on every rank (see
                // overlap_step).
                if (steps > 0 && regrow_limit > 0.0) {
                    if (dt_global > regrow_limit) {
                        dt_global = regrow_limit;
                        regrow_limit *= guard.regrow_cap;
                    } else {
                        regrow_limit = 0.0;
                    }
                }
                const auto step_dt =
                    hydro::clamp_to_t_end(t, dt_global, opts.t_end);
                dt_prev = step_dt.unclamped;
                refresh_ghosts(ctx, s, comm, sub, opts.packing);
                dist_lagstep(ctx, s, step_dt.used, comm, sub, opts.packing);
                dt_used = step_dt.used;
                t_end_clamped = step_dt.used != step_dt.unclamped;
            }

            if (guard.enabled) {
                // Collective health vote + dt-backoff retry. Every rank
                // checks its owned entities (their union is the global
                // set and owned bytes are bitwise-serial), so the
                // min-reduced verdict equals the serial driver's
                // step_healthy on the full state — the retry decision is
                // agreed bitwise on all ranks. Retries replay the step on
                // the blocking schedule (bitwise == overlap by contract);
                // the reduce is a collective, so the per-step
                // point-to-point message count of a healthy run is
                // untouched.
                bool healthy = hydro::step_healthy(s, sub.n_owned_cells,
                                                   sub.node_owned);
                for (;;) {
                    Real all_ok;
                    {
                        const util::ScopedTimer timer(profiler,
                                                      util::Kernel::reduce);
                        const util::ScopedTimer wait(
                            profiler, util::Kernel::reduce_wait);
                        all_ok = comm.allreduce_min(healthy ? Real(1.0)
                                                            : Real(0.0));
                    }
                    if (all_ok > Real(0.5)) break;
                    util::require(
                        retries < guard.max_retries,
                        "hydro: step " + std::to_string(steps + 1) +
                            " rejected by health guards after " +
                            std::to_string(retries) + " dt-backoff retries");
                    ++retries;
                    const Real dt_try = dt_used * guard.backoff;
                    util::require(dt_try >= opts.hydro.dt_min,
                                  "hydro: health-guard backoff drove dt below "
                                  "dt_min at step " +
                                      std::to_string(steps + 1));
                    hydro::restore_step(ctx, s, backup);
                    refresh_ghosts(ctx, s, comm, sub, opts.packing);
                    dist_lagstep(ctx, s, dt_try, comm, sub, opts.packing);
                    dt_used = dt_try;
                    healthy = hydro::step_healthy(s, sub.n_owned_cells,
                                                  sub.node_owned);
                }
                if (retries > 0) {
                    // Accepted retried step: the used dt becomes the
                    // growth reference and arms the re-growth ceiling
                    // (serial semantics, collectively-agreed values only).
                    dt_prev = dt_used;
                    regrow_limit = dt_used * guard.regrow_cap;
                }
            }
            t += dt_used;

            // Remap cadence as in core::Hydro::step_clamped: Eulerian
            // every step, ALE every `frequency` steps (1-based).
            bool remapped = false;
            if (remap_enabled &&
                (opts.ale.mode == ale::Mode::eulerian ||
                 (steps + 1) % opts.ale.frequency == 0)) {
                remap(ctx, s, opts.ale, ale_work, comm, sub, opts.packing);
                remapped = true;
            }
            if (telemetry) {
                // Recorded after the step's physics committed (passive —
                // telemetry reads state, never feeds back into it). The
                // constraint resolution mirrors the serial driver's
                // precedence: retry > t_end clamp > regrow ceiling >
                // getdt's own reason.
                if (retries > 0)
                    dt_reason = "health-retry";
                else if (t_end_clamped)
                    dt_reason = "t_end";
                else if (steps > 0 && regrow_before > 0.0 &&
                         regrow_limit > 0.0)
                    dt_reason = "regrow";
                obs::StepRecord rec;
                rec.step = steps;
                rec.t = t;
                rec.dt = dt_used;
                rec.dt_local = dt_local;
                rec.dt_reason = obs::dt_reason_code(dt_reason);
                rec.start_us = std::chrono::duration<double, std::micro>(
                                   step_t0 - rank_epoch)
                                   .count();
                rec.wall_us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - step_t0)
                        .count();
                rec.retries = retries;
                rec.remapped = remapped;
                obs::attribute_step(
                    graph_log, rec, attrib,
                    opts.telemetry.want_trace()
                        ? &crits[static_cast<std::size_t>(comm.rank())]
                        : nullptr);
                my_steps.push(rec);
                if (folder) {
                    if (auto w = folder->add(rec)) {
                        my_windows.push_back(*w);
                        comm.send(0, live_tag, obs::pack_window(*w));
                    }
                }
            }
            ++steps;
            // Snapshot cadences: every rank evaluates the same triggers
            // (t and steps are globally identical), so the gather below
            // is collective. Both cadences only ever fire after completed
            // natural steps — a checkpointing/supervised run is bitwise
            // the run without either. One gather feeds the on-disk
            // checkpoint, the supervisor's rollback ring and an optional
            // ring spill to disk.
            const bool disk_due = opts.checkpoint.enabled() &&
                                  opts.checkpoint.due(steps, t_before, t);
            const bool ring_due = supervised &&
                                  opts.supervise.snapshot_every > 0 &&
                                  steps % opts.supervise.snapshot_every == 0;
            if (disk_due || ring_due) {
                if (comm.rank() == 0) ++gather_events;
                auto gathered = gather_snapshot(comm, subs, global,
                                                global_hash, s, sub, t,
                                                dt_prev, regrow_limit, steps,
                                                profiler);
                if (gathered.has_value()) { // rank 0 only
                    if (disk_due) {
                        const auto path = opts.checkpoint.path_for(steps);
                        ckpt::write(path, *gathered);
                        // A recovery replays steps, so a path may come up
                        // twice; the rewrite is byte-identical (bitwise
                        // contract) — record it once.
                        if (std::find(result.checkpoints.begin(),
                                      result.checkpoints.end(),
                                      path) == result.checkpoints.end())
                            result.checkpoints.push_back(path);
                    }
                    if (supervised) {
                        if (!opts.supervise.spill_prefix.empty())
                            ckpt::write(opts.supervise.spill_prefix + "_" +
                                            std::to_string(steps) + ".ckpt",
                                        *gathered);
                        ring.push_back(std::move(*gathered));
                        if (ring.size() > ring_capacity) ring.pop_front();
                    }
                }
                if (disk_due && opts.checkpoint.halt_after) break;
            }
        }

        // Step loop done: stop the stall supervisor (no more progress
        // ticks are coming, so anything it would flag now is a false
        // positive), then drain the tag-502 stream dry. Lockstep stepping
        // means every rank produced exactly this rank-0 folder's window
        // count; the blocking wait() promotes fault-held messages, so a
        // delay plan cannot strand the channel past Hub::drained().
        if (live && comm.rank() == 0) {
            watch_session.reset();
            const long expect = folder->produced();
            for (int r = 0; r < comm.size(); ++r) {
                auto& req = live_pending[static_cast<std::size_t>(r)];
                while (live_received[static_cast<std::size_t>(r)] < expect) {
                    req.wait();
                    harvest_window(req.data(), r);
                    req = comm.irecv(r, live_tag);
                }
            }
        }

        // Gather owned fields into the global result. Each global cell has
        // exactly one owner and each global node one owning rank, so the
        // writes are disjoint across rank threads.
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
            const auto gc =
                static_cast<std::size_t>(sub.local_cells[static_cast<std::size_t>(lc)]);
            result.rho[gc] = s.rho[static_cast<std::size_t>(lc)];
            result.ein[gc] = s.ein[static_cast<std::size_t>(lc)];
        }
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
            if (!sub.node_owned[ln]) continue;
            const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
            result.u[gn] = s.u[ln];
            result.v[gn] = s.v[ln];
            result.x[gn] = s.x[ln];
            result.y[gn] = s.y[ln];
        }
        steps_per_rank[static_cast<std::size_t>(comm.rank())] = steps;
        t_per_rank[static_cast<std::size_t>(comm.rank())] = t;

        // Telemetry gather (tag 501): every rank ships its step records
        // and kernel breakdown to rank 0 — the same every-rank-sends
        // pattern as the checkpoint gather, once, after the field gather,
        // so it cannot perturb the run it measures.
        if (telemetry) {
            obs::RankRecord rec;
            rec.rank = comm.rank();
            rec.epoch_us = std::chrono::duration<double, std::micro>(
                               rank_epoch - telemetry_epoch)
                               .count();
            rec.steps = my_steps.take();
            rec.evicted = my_steps.evicted();
            rec.windows = std::move(my_windows);
            rec.kernels = profiler.snapshot();
            rec.attrib = std::move(attrib);
            comm.send(0, telemetry_tag, obs::pack_rank(rec));
            if (comm.rank() == 0) {
                rank_records.resize(static_cast<std::size_t>(comm.size()));
                for (int r = 0; r < comm.size(); ++r)
                    rank_records[static_cast<std::size_t>(r)] =
                        obs::unpack_rank(comm.recv(r, telemetry_tag));
            }
        }
                }, fault);
        } catch (const typhon::RankFailure& failure) {
            if (!supervised ||
                static_cast<int>(result.recoveries.size()) >=
                    opts.supervise.max_recoveries ||
                ranks_now <= 1)
                throw;
            Result::Recovery rec;
            rec.failed_rank = failure.rank;
            rec.failed_step = failure.step;
            rec.survivors = ranks_now - 1;
            rec.error = failure.what();
            // Roll back to the newest ring snapshot; with an empty ring
            // the run restarts from where this attempt began (the restart
            // snapshot or the initial conditions).
            if (!ring.empty()) {
                rollback = ring.back();
                start_snap = &rollback;
            }
            rec.resumed_step =
                start_snap != nullptr ? start_snap->steps : 0;
            if (live_stream.open()) {
                obs::Json ev;
                ev["event"] = "recovery";
                ev["attempt"] = attempt;
                ev["failed_rank"] = rec.failed_rank;
                ev["failed_step"] = rec.failed_step;
                ev["resumed_step"] = static_cast<long long>(rec.resumed_step);
                ev["survivors"] = rec.survivors;
                live_stream.emit(std::move(ev));
            }
            result.recoveries.push_back(std::move(rec));
            --ranks_now;
            if (opts.supervise.backoff_ms > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(opts.supervise.backoff_ms));
            continue;
        }

        result.steps = steps_per_rank[0];
        result.t_final = t_per_rank[0];
        result.profiles.resize(static_cast<std::size_t>(ranks_now));
        for (int r = 0; r < ranks_now; ++r)
            result.profiles[static_cast<std::size_t>(r)] =
                profilers[static_cast<std::size_t>(r)].snapshot();
        result.windows = std::move(live_windows);

        if (telemetry) {
            obs::RunReport report;
            report.problem = opts.telemetry.label;
            report.label = opts.telemetry.label;
            report.mode = "distributed";
            report.n_ranks = ranks_now;
            report.overlap = opts.overlap;
            report.packing = opts.packing == typhon::Packing::coalesced
                                 ? "coalesced"
                                 : "per_field";
            report.steps = result.steps;
            report.t_final = result.t_final;
            report.wall_s = run_timer.elapsed();
            for (const auto& rec : result.recoveries) {
                obs::RecoveryEvent e;
                e.failed_rank = rec.failed_rank;
                e.failed_step = rec.failed_step;
                e.resumed_step = static_cast<long>(rec.resumed_step);
                e.survivors = rec.survivors;
                report.recoveries.push_back(e);
            }
            // The executed configuration, so the report reproduces the
            // run without the invoking script. task_block mirrors the
            // per-rank Exec the rank lambdas build (default blocking).
            report.config.schedule =
                opts.schedule == par::Schedule::taskgraph ? "taskgraph"
                                                          : "forkjoin";
            report.config.task_block = par::Exec{}.task_block;
            report.config.grain = par::Exec{}.grain;
            report.config.n_threads = opts.n_threads;
            report.config.n_ranks = ranks_now;
            report.config.overlap = opts.overlap;
            report.config.packing = report.packing;
            report.work = perfmodel::telemetry_work_model(opts.n_threads);

            // Attach what only the host side holds: the Hub's per-peer
            // send tallies and the trace/critical-path spans (after a
            // recovery the records cover the successful attempt only —
            // its traffic, its traces, its steps from the rollback
            // point). Then shift every per-rank timestamp by that rank's
            // epoch offset so all tracks share rank 0's timeline.
            const double epoch0 =
                rank_records.empty() ? 0.0 : rank_records[0].epoch_us;
            for (auto& rank : rank_records) {
                for (const auto& p : result.traffic.peers)
                    if (p.src == rank.rank)
                        rank.sent.push_back({p.dst, p.messages, p.reals});
                if (!traces.empty()) {
                    rank.trace = std::move(
                        traces[static_cast<std::size_t>(rank.rank)]);
                    rank.critical = std::move(
                        crits[static_cast<std::size_t>(rank.rank)]);
                }
                const double shift = rank.epoch_us - epoch0;
                for (auto& step : rank.steps) step.start_us += shift;
                for (auto& span : rank.trace) span.t0_us += shift;
                for (auto& span : rank.critical) span.t0_us += shift;
                rank.epoch_us = shift;
            }
            report.ranks = std::move(rank_records);
            report.imbalance = obs::imbalance_of(report.ranks);
            report.anomalies = obs::detect_anomalies(
                report, opts.telemetry.anomaly_factor);

            // Wire-format self-check: predict the run's point-to-point
            // message count from the Subdomain metadata. Only meaningful
            // on an undisturbed schedule — faults, recoveries and
            // health-guard retries all legitimately change the count.
            long long total_retries = 0;
            for (const auto& r : report.ranks) {
                total_retries += static_cast<long long>(r.evicted.retries);
                for (const auto& s : r.steps) total_retries += s.retries;
            }
            if (result.recoveries.empty() && opts.faults.empty() &&
                total_retries == 0) {
                const int n_mesh = opts.ale.mode == ale::Mode::ale
                                       ? opts.ale.smoothing_passes + 1
                                       : 0;
                long long expected = 0;
                for (int r = 0; r < ranks_now; ++r) {
                    const auto& rr =
                        report.ranks[static_cast<std::size_t>(r)];
                    const auto& sub_r = subs[static_cast<std::size_t>(r)];
                    // Step and remap counts over ALL steps, including the
                    // ones the max_steps ring evicted into the aggregate.
                    long long remaps =
                        static_cast<long long>(rr.evicted.remaps);
                    for (const auto& s : rr.steps)
                        if (s.remapped) ++remaps;
                    const long long n_steps =
                        static_cast<long long>(rr.evicted.steps) +
                        static_cast<long long>(rr.steps.size());
                    expected += static_cast<long long>(
                                    sub_r.messages_per_step(opts.packing)) *
                                n_steps;
                    expected +=
                        static_cast<long long>(
                            sub_r.messages_per_remap(opts.packing, n_mesh)) *
                        remaps;
                    // Plus the rank's tag-502 live-window sends.
                    expected += static_cast<long long>(rr.windows.size());
                }
                // Plus one send per rank per checkpoint/ring gather, and
                // one per rank for the telemetry gather itself.
                expected += gather_events * ranks_now;
                expected += ranks_now;
                report.wire.checked = true;
                report.wire.expected = expected;
                report.wire.measured = result.traffic.messages;
                report.wire.match = expected == result.traffic.messages;
                if (!report.wire.match)
                    util::log_warn(
                        "telemetry: wire-format drift — measured ",
                        result.traffic.messages,
                        " point-to-point messages, metadata predicts ",
                        expected);
            }
            result.telemetry = std::move(report);
            obs::write_outputs(opts.telemetry, result.telemetry);
        }
        if (live_stream.open()) {
            obs::Json ev;
            ev["event"] = "run_end";
            ev["steps"] = result.steps;
            ev["t_final"] = result.t_final;
            ev["wall_s"] = run_timer.elapsed();
            ev["windows"] = static_cast<long long>(result.windows.size());
            ev["stalls"] = static_cast<long long>(stall_count.load());
            ev["recoveries"] =
                static_cast<long long>(result.recoveries.size());
            live_stream.emit(std::move(ev));
        }
        return result;
    }
}

/// Shared argument checks of both run() entry points.
void check_options(const Options& opts) {
    util::require(opts.n_ranks >= 1, "dist::run: n_ranks must be >= 1");
    util::require(opts.n_threads >= 1, "dist::run: n_threads must be >= 1");
    util::require(opts.ale.mode == ale::Mode::lagrange ||
                      opts.ale.frequency >= 1,
                  "dist::run: ale frequency must be >= 1");
}

} // namespace

Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const std::vector<Real>& rho, const std::vector<Real>& ein,
           const std::vector<Real>& u, const std::vector<Real>& v,
           const Options& opts) {
    check_options(opts);
    util::require(rho.size() == static_cast<std::size_t>(global.n_cells()) &&
                      ein.size() == rho.size(),
                  "dist::run: cell field size mismatch");
    util::require(u.size() == static_cast<std::size_t>(global.n_nodes()) &&
                      v.size() == u.size(),
                  "dist::run: node field size mismatch");
    return run_impl(global, materials, opts, nullptr, &rho, &ein, &u, &v);
}

Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const ckpt::Snapshot& snapshot, const Options& opts) {
    check_options(opts);
    if (snapshot.mesh_hash != ckpt::mesh_hash(global))
        throw util::Error(
            "dist::run: checkpoint/deck mismatch — the snapshot was written "
            "for a different mesh");
    util::require(snapshot.n_nodes() == global.n_nodes() &&
                      snapshot.n_cells() == global.n_cells(),
                  "dist::run: snapshot entity counts disagree with the mesh");
    return run_impl(global, materials, opts, &snapshot, nullptr, nullptr,
                    nullptr, nullptr);
}

bool bitwise_equal(const Result& a, const Result& b) {
    return a.steps == b.steps && a.rho == b.rho && a.ein == b.ein &&
           a.u == b.u && a.v == b.v && a.x == b.x && a.y == b.y;
}

} // namespace bookleaf::dist
