/// \file distributed.cpp
/// Distributed (flat-MPI analogue) driver. Each typhon rank owns a
/// subdomain and runs the Lagrangian predictor-corrector locally; ghost
/// data is refreshed with the paper's two halo exchanges per step:
///   1. before GETQ: node positions/velocities + ghost internal energy
///      (the dependent thermodynamic state is rebuilt locally);
///   2. before GETACC: ghost corner forces, so the nodal assembly at every
///      node of an owned cell is complete and exact.
/// The timestep is the global min-reduction of the owned-cell dt.

#include "dist/distributed.hpp"

#include <string>

#include "geom/geometry.hpp"
#include "part/subdomain.hpp"
#include "typhon/typhon.hpp"
#include "util/error.hpp"

namespace bookleaf::dist {

namespace {

/// One rank's Lagrangian step with the mid-step corner-force exchange.
/// Mirrors hydro::lagstep exactly, with typhon traffic inserted where the
/// paper's Algorithm 1 places it.
void dist_lagstep(const hydro::Context& ctx, hydro::State& s, Real dt,
                  typhon::Comm& comm, const part::Subdomain& sub) {
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
        s.x0 = s.x;
        s.y0 = s.y;
        s.u0 = s.u;
        s.v0 = s.v;
        s.ein0 = s.ein;
    }
    const Real half_dt = Real(0.5) * dt;

    // --- predictor ---------------------------------------------------------
    hydro::getq(ctx, s);
    hydro::getforce(ctx, s);
    hydro::getgeom(ctx, s, s.u0, s.v0, half_dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.u0, s.v0, half_dt);
    hydro::getpc(ctx, s);

    // --- corrector ----------------------------------------------------------
    hydro::getq(ctx, s);
    hydro::getforce(ctx, s);
    {
        // Pre-acceleration halo: ghost corner forces from their owners.
        // After this, the gather at any node of an owned cell sees exactly
        // the corner forces a serial run would.
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        typhon::exchange_all(comm, sub.corner_schedule, {s.fx, s.fy}, 200);
    }
    hydro::getacc(ctx, s, dt);
    hydro::getgeom(ctx, s, s.ubar, s.vbar, dt);
    hydro::getrho(ctx, s);
    hydro::getein(ctx, s, s.ubar, s.vbar, dt);
    hydro::getpc(ctx, s);
}

/// Pre-step halo: refresh ghost node kinematics and ghost internal energy,
/// then rebuild the dependent state (geometry, density, EoS) *of the ghost
/// cells only* — owned cells ended the previous step exact (every node of
/// an owned cell has its full assembly locally), so recomputing them would
/// be pure waste and would skew the per-kernel profile against the serial
/// driver. Ghost cells are contiguous after the owned block.
void refresh_ghosts(const hydro::Context& ctx, hydro::State& s,
                    typhon::Comm& comm, const part::Subdomain& sub) {
    {
        const util::ScopedTimer timer(*ctx.profiler, util::Kernel::halo);
        typhon::exchange_all(comm, sub.node_schedule, {s.x, s.y, s.u, s.v},
                             100);
        typhon::exchange(comm, sub.cell_schedule, s.ein, 150);
    }
    const util::ScopedTimer timer(*ctx.profiler, util::Kernel::other);
    const auto& mesh = *ctx.mesh;
    const auto& materials = *ctx.materials;
    for (Index c = sub.n_owned_cells; c < mesh.n_cells(); ++c) {
        const auto quad = geom::gather(mesh, s.x, s.y, c);
        s.cache_geometry(c, quad);
        const auto ci = static_cast<std::size_t>(c);
        const Real vol = geom::quad_area(quad);
        if (vol <= 0.0)
            throw util::Error("dist: non-positive ghost volume in cell " +
                              std::to_string(c));
        s.volume[ci] = vol;
        s.char_len[ci] = geom::char_length(quad);
        const auto cv = geom::corner_volumes(quad);
        for (int k = 0; k < corners_per_cell; ++k)
            s.cnvol[hydro::State::cidx(c, k)] = cv[static_cast<std::size_t>(k)];
        s.rho[ci] = s.cell_mass[ci] / std::max(vol, tiny);
        const Index r = mesh.cell_region[ci];
        s.pre[ci] = materials.pressure(r, s.rho[ci], s.ein[ci]);
        s.csqrd[ci] = materials.sound_speed2(r, s.rho[ci], s.ein[ci]);
    }
}

} // namespace

Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const std::vector<Real>& rho, const std::vector<Real>& ein,
           const std::vector<Real>& u, const std::vector<Real>& v,
           const Options& opts) {
    util::require(opts.n_ranks >= 1, "dist::run: n_ranks must be >= 1");
    util::require(rho.size() == static_cast<std::size_t>(global.n_cells()) &&
                      ein.size() == rho.size(),
                  "dist::run: cell field size mismatch");
    util::require(u.size() == static_cast<std::size_t>(global.n_nodes()) &&
                      v.size() == u.size(),
                  "dist::run: node field size mismatch");

    const std::vector<Index> part =
        opts.partitioner ? opts.partitioner(global, opts.n_ranks)
                         : part::rcb(global, opts.n_ranks);
    const auto subs = part::decompose(global, part, opts.n_ranks);

    Result result;
    result.rho.resize(rho.size());
    result.ein.resize(ein.size());
    result.u.resize(u.size());
    result.v.resize(v.size());
    result.profiles.resize(static_cast<std::size_t>(opts.n_ranks));
    std::vector<util::Profiler> profilers(
        static_cast<std::size_t>(opts.n_ranks));
    std::vector<int> steps_per_rank(static_cast<std::size_t>(opts.n_ranks), 0);
    std::vector<Real> t_per_rank(static_cast<std::size_t>(opts.n_ranks), 0.0);

    typhon::run(opts.n_ranks, [&](typhon::Comm& comm) {
        const auto& sub = subs[static_cast<std::size_t>(comm.rank())];
        auto& profiler = profilers[static_cast<std::size_t>(comm.rank())];

        hydro::State s = hydro::allocate(sub.local);
        for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
            const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
            s.rho[lc] = rho[gc];
            s.ein[lc] = ein[gc];
        }
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
            const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
            s.u[ln] = u[gn];
            s.v[ln] = v[gn];
        }
        hydro::initialise(sub.local, materials, s);

        hydro::Context ctx;
        ctx.mesh = &sub.local;
        ctx.materials = &materials;
        ctx.opts = opts.hydro;
        ctx.profiler = &profiler;
        ctx.dt_cells = sub.n_owned_cells; // dt over owned cells only

        Real t = 0.0;
        Real dt = opts.hydro.dt_initial;
        int steps = 0;
        while (t < opts.t_end * (Real(1.0) - eps) && steps < opts.max_steps) {
            if (steps > 0) {
                const auto local = hydro::getdt(ctx, s, dt);
                const util::ScopedTimer timer(profiler, util::Kernel::reduce);
                dt = comm.allreduce_min(local.dt);
            }
            if (t + dt > opts.t_end) dt = opts.t_end - t;

            refresh_ghosts(ctx, s, comm, sub);
            dist_lagstep(ctx, s, dt, comm, sub);

            t += dt;
            ++steps;
        }

        // Gather owned fields into the global result. Each global cell has
        // exactly one owner and each global node one owning rank, so the
        // writes are disjoint across rank threads.
        for (Index lc = 0; lc < sub.n_owned_cells; ++lc) {
            const auto gc =
                static_cast<std::size_t>(sub.local_cells[static_cast<std::size_t>(lc)]);
            result.rho[gc] = s.rho[static_cast<std::size_t>(lc)];
            result.ein[gc] = s.ein[static_cast<std::size_t>(lc)];
        }
        for (std::size_t ln = 0; ln < sub.local_nodes.size(); ++ln) {
            if (!sub.node_owned[ln]) continue;
            const auto gn = static_cast<std::size_t>(sub.local_nodes[ln]);
            result.u[gn] = s.u[ln];
            result.v[gn] = s.v[ln];
        }
        steps_per_rank[static_cast<std::size_t>(comm.rank())] = steps;
        t_per_rank[static_cast<std::size_t>(comm.rank())] = t;
    });

    result.steps = steps_per_rank[0];
    result.t_final = t_per_rank[0];
    for (int r = 0; r < opts.n_ranks; ++r)
        result.profiles[static_cast<std::size_t>(r)] =
            profilers[static_cast<std::size_t>(r)].snapshot();
    return result;
}

} // namespace bookleaf::dist
