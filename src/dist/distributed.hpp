#pragma once
/// \file distributed.hpp
/// The flat-MPI analogue driver (paper §III-A / §IV-A): the global mesh is
/// partitioned across in-process ranks (typhon threads), each rank runs
/// Algorithm 1 on its subdomain (owned cells first, node-adjacent ghost
/// layer after), and the paper's communication pattern is reproduced
/// exactly — two ghost exchanges per Lagrangian step (state before GETQ,
/// corner forces before GETACC) plus one global dt min-reduction, and the
/// ghost-aware remap exchanges on ALE/Eulerian remap steps.
///
/// Rank-count invariance is *bitwise*: every owned cell and every node of
/// an owned cell sees the same input bytes as a serial run (ghost data
/// comes from its owning rank), and every cross-entity reduction gathers
/// in ascending global order (Subdomain::assembly_corners), so the
/// gathered fields equal the serial core::Hydro run bit for bit at any
/// rank count — Lagrange, ALE and Eulerian alike.

#include <functional>
#include <string>
#include <vector>

#include "ale/remap.hpp"
#include "ckpt/checkpoint.hpp"
#include "hydro/kernels.hpp"
#include "mesh/mesh.hpp"
#include "obs/live.hpp"
#include "obs/telemetry.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"
#include "resil/resilience.hpp"
#include "typhon/fault.hpp"
#include "typhon/typhon.hpp"
#include "util/profiler.hpp"

namespace bookleaf::dist {

/// Cell partitioner callback: global mesh + rank count -> part id per cell.
using Partitioner =
    std::function<std::vector<Index>(const mesh::Mesh&, int)>;

struct Options {
    int n_ranks = 1;
    Real t_end = 0.0;
    hydro::Options hydro;
    /// nullptr selects recursive coordinate bisection (part::rcb).
    Partitioner partitioner;
    int max_steps = std::numeric_limits<int>::max();
    /// Overlap halo exchanges with interior kernels (the nonblocking
    /// typhon path): both per-step exchanges are posted early and interior
    /// cells/nodes compute while the messages are in flight, and the
    /// global dt min-reduction is posted nonblocking alongside the
    /// pre-step state halo (it is finished before the predictor consumes
    /// dt). false selects the paper's blocking schedule as an ablation
    /// baseline. Contract: the two schedules are bitwise identical at
    /// every rank count — the ghost inputs are the same bytes and the
    /// rank-ordered reduction gives the same dt, only the execution order
    /// of per-item-independent kernels changes.
    bool overlap = true;
    /// Halo wire format (orthogonal to `overlap`): coalesced posts one
    /// message per peer per exchange with the fields' slices back-to-back
    /// in schedule order; per_field is the one-message-per-field ablation
    /// baseline. The two land bitwise-identical ghost bytes, so every
    /// (overlap, packing) combination produces bitwise-identical fields.
    typhon::Packing packing = typhon::Packing::coalesced;
    /// Worker threads per rank (the hybrid MPI+OpenMP analogue). 1 keeps
    /// the flat-MPI model: each rank runs its subdomain serially. > 1
    /// attaches a per-rank par::ThreadPool, so every hydro/ALE kernel runs
    /// its existing threaded path over the subdomain and state allocation
    /// first-touches pages in the same blocks the kernels sweep. Bitwise
    /// invariant at any (n_ranks x n_threads): the threaded kernels are
    /// schedule-independent by construction.
    int n_threads = 1;
    /// Intra-rank scheduling strategy (only meaningful with n_threads > 1):
    /// taskgraph runs the ALE advection phases as a dependency graph over
    /// entity blocks — and lets remap() release ghost-touching face blocks
    /// from the gradient-exchange finish instead of a full barrier —
    /// forkjoin is the barrier-per-kernel ablation. Bitwise identical.
    par::Schedule schedule = par::Schedule::taskgraph;
    /// ALE/remap configuration carried over from the source deck. All
    /// three modes run distributed: after the Lagrangian corrector of a
    /// remap-due step, each rank executes the ghost-aware ALE step (see
    /// remap() below), whose exchanges make every owned-entity result
    /// bitwise identical to the serial driver's remap.
    ale::Options ale;
    /// Checkpoint cadence (deck `[checkpoint]`). When a checkpoint is due
    /// every rank sends its owned slice to rank 0 through the typhon
    /// point-to-point layer; rank 0 assembles the fields in ascending
    /// global entity order and writes the file — byte-identical to the
    /// snapshot a serial run would write at the same step (the bitwise
    /// owned-entity contract), which is what makes restart rank-elastic.
    ckpt::Config checkpoint;
    /// Supervised fault recovery (deck `[resilience]`). When enabled, a
    /// rank failure inside the run does not kill the job: the supervisor
    /// rolls the global state back to the newest in-memory snapshot (the
    /// ring fed by `snapshot_every`, falling back to the restart snapshot
    /// or the initial conditions), drops the failed rank, re-decomposes
    /// the mesh over the survivors and resumes — rank-elastic restart in
    /// flight. Because checkpoints are rank-count invariant and the
    /// owned-entity contract is bitwise at any rank count, the recovered
    /// run's result is bitwise identical to an uninterrupted run.
    resil::Supervision supervise;
    /// Deterministic fault plan consulted by the typhon transport (empty =
    /// zero-cost). Kills, delays and slow-downs are scripted per rank by
    /// step/message ordinal and seeded, so a failure reproduces exactly.
    typhon::FaultPlan faults;
    /// Run telemetry (deck `[telemetry]`). When active, every rank
    /// records per-step wall time / dt controller state / retries and the
    /// comm-split kernel breakdown; rank 0 gathers the records over the
    /// in-process wire (tag 501), computes the max/mean step-time
    /// imbalance, cross-checks measured Hub traffic against the
    /// Subdomain wire metadata, and applies the requested sinks.
    /// Passive: the gathered physics fields are bitwise identical with
    /// telemetry on or off. Inactive (the default) costs nothing.
    obs::Options telemetry;
    /// Live-window callback (deck `[telemetry] window_steps` > 0): rank 0
    /// invokes it from inside the run — on the rank-0 driver thread — for
    /// every completed LiveWindow (all ranks' windows plus the online
    /// imbalance), as soon as the tag-502 stream completes it. The online
    /// consumer hook a future load balancer attaches to. Must not throw;
    /// keep it cheap — the rank-0 step loop waits on it.
    std::function<void(const obs::LiveWindow&)> on_window;
};

/// Gathered (global-numbering) result of a distributed run.
struct Result {
    int steps = 0;
    Real t_final = 0.0;
    std::vector<Real> rho, ein; ///< per global cell
    std::vector<Real> u, v;     ///< per global node
    std::vector<Real> x, y;     ///< per global node (remaps move the mesh)
    /// Per-rank kernel timing snapshots (halo / reduce included).
    std::vector<std::array<util::KernelStats, util::kernel_count>> profiles;
    /// Aggregate point-to-point traffic of the run (all ranks): what the
    /// message-coalescing ablation counts. Deliberately *not* part of
    /// bitwise_equal — coalesced and per-field packings move the same
    /// field bytes in different message shapes.
    typhon::Traffic traffic;
    /// Paths of the checkpoints rank 0 wrote during the run (in order).
    std::vector<std::string> checkpoints;
    /// One entry per supervised rank-failure recovery, in order. Empty on
    /// an undisturbed run. Deliberately *not* part of bitwise_equal — a
    /// recovered run is bitwise-compared against an uninterrupted one.
    struct Recovery {
        int failed_rank = -1;        ///< rank typhon reported as failed
        int failed_step = -1;        ///< step it was in (-1 if before any)
        std::int64_t resumed_step = 0; ///< step of the rollback snapshot
        int survivors = 0;           ///< rank count of the resumed attempt
        std::string error;           ///< the failure's error message
    };
    std::vector<Recovery> recoveries;
    /// The gathered telemetry run report (empty/default unless
    /// Options::telemetry is active). Deliberately *not* part of
    /// bitwise_equal — wall times differ between identical runs.
    obs::RunReport telemetry;
    /// Every completed live monitoring window of the successful attempt
    /// (empty unless `[telemetry] window_steps` > 0). Deliberately *not*
    /// part of bitwise_equal — window wall times differ between identical
    /// runs; the physics fields above are the passivity contract.
    std::vector<obs::LiveWindow> windows;
};

/// Partition, run Algorithm 1 to t_end on every rank (including the
/// ALE/Eulerian remap when the deck requests one), gather owned fields
/// back to the global numbering.
Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const std::vector<Real>& rho, const std::vector<Real>& ein,
           const std::vector<Real>& u, const std::vector<Real>& v,
           const Options& opts);

/// Rank-elastic restart: continue a checkpointed run at opts.n_ranks —
/// which need not be the rank count (or the serial driver) that wrote the
/// snapshot. The global snapshot fields are routed through
/// part::decompose: each rank restores its owned + ghost slice from the
/// global arrays (exactly the bytes a serial run would hold there),
/// rebuilds the derived state, and steps from (snapshot.t,
/// snapshot.steps) with the snapshot's unclamped dt growth reference.
/// Contract: the gathered result at t_end is bitwise identical to the
/// uninterrupted run at any rank count, under every (overlap x packing)
/// combination. Throws util::Error if the snapshot does not match the
/// mesh.
Result run(const mesh::Mesh& global, const eos::MaterialTable& materials,
           const ckpt::Snapshot& snapshot, const Options& opts);

/// One distributed ALE/Eulerian remap on a rank's subdomain state — the
/// ghost-aware ALE step dist::run executes after the Lagrangian corrector
/// of every remap-due step. Exposed so the remap unit tests and the
/// remap-halo bench can drive it directly inside a typhon::run.
///
/// Exchange schedule (all blocking, all charged to Kernel::halo):
///   1. pre-remap state refresh — the same fused node{x,y,u,v}+cell{ein}
///      halo as the pre-step exchange, then the ghost dependent state is
///      rebuilt (the corrector left ghosts stale);
///   2. ALE mode only: a node{xt,yt} halo after every Jacobi smoothing
///      pass and after the clamp (fringe stencils are incomplete);
///      Eulerian needs none — the target is the original mesh;
///   3. ghost-cell gradients over part::Subdomain::remap_cell_schedule
///      (face-adjacent ghosts), so limited reconstruction at boundary
///      cells sees bitwise the serial inputs;
///   4. after the cell and dual sweeps: one fused exchange of the cell
///      results {cell_mass, ein} and the dual-mesh results {cnmass,
///      dflux} — ghost dual fluxes are not locally computable (their far
///      faces leave the subdomain) yet drive owned-node momentum.
/// ctx.assembly_corners must point at sub.assembly_corners (dist::run
/// arranges this) so the nodal gathers sum in serial order.
void remap(const hydro::Context& ctx, hydro::State& s, const ale::Options& ale,
           ale::Workspace& w, typhon::Comm& comm, const part::Subdomain& sub,
           typhon::Packing packing);

/// True when every gathered field of the two results is bitwise equal
/// (and the step counts match). The single definition of the
/// overlap==blocking contract check — used by the tests, the ablation
/// bench and the distributed_sod example, so a field added to Result only
/// needs comparing here.
[[nodiscard]] bool bitwise_equal(const Result& a, const Result& b);

} // namespace bookleaf::dist
