#include "eos/eos.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace bookleaf::eos {

namespace {

struct PressureOp {
    Real rho, ein;

    Real operator()(const IdealGas& m) const {
        return (m.gamma - Real(1.0)) * rho * ein;
    }
    Real operator()(const Tait& m) const {
        return m.b * (std::pow(rho / m.rho0, m.n) - Real(1.0)) + m.p_ref;
    }
    Real operator()(const Jwl& m) const {
        const Real eta = rho / m.rho0;
        if (eta <= tiny) return 0.0;
        const Real t1 = m.a * (Real(1.0) - m.omega * eta / m.r1) * std::exp(-m.r1 / eta);
        const Real t2 = m.b * (Real(1.0) - m.omega * eta / m.r2) * std::exp(-m.r2 / eta);
        return t1 + t2 + m.omega * rho * ein;
    }
    Real operator()(const Void&) const { return 0.0; }
};

struct SoundSpeed2Op {
    Real rho, ein;

    Real operator()(const IdealGas& m) const {
        // c^2 = gamma P / rho = gamma (gamma-1) e.
        return m.gamma * (m.gamma - Real(1.0)) * std::max(ein, Real(0.0));
    }
    Real operator()(const Tait& m) const {
        const Real eta = rho / m.rho0;
        return (m.b * m.n / m.rho0) * std::pow(eta, m.n - Real(1.0));
    }
    Real operator()(const Jwl& m) const {
        // c^2 = (dP/drho)|_e + (P/rho^2)(dP/de)|_rho, with (dP/de) = w rho.
        const Real eta = rho / m.rho0;
        if (eta <= tiny) return 0.0;
        const Real e1 = std::exp(-m.r1 / eta);
        const Real e2 = std::exp(-m.r2 / eta);
        // d/drho of A(1 - w eta/R1) exp(-R1/eta):
        //   A/rho0 * exp(-R1/eta) * [ -w/R1 + (1 - w eta/R1) * R1/eta^2 ].
        const Real d1 = m.a / m.rho0 * e1 *
                        (-m.omega / m.r1 +
                         (Real(1.0) - m.omega * eta / m.r1) * m.r1 / (eta * eta));
        const Real d2 = m.b / m.rho0 * e2 *
                        (-m.omega / m.r2 +
                         (Real(1.0) - m.omega * eta / m.r2) * m.r2 / (eta * eta));
        const Real dpdrho = d1 + d2 + m.omega * ein;
        const Real p = PressureOp{rho, ein}(m);
        return dpdrho + p / (rho * rho) * (m.omega * rho);
    }
    Real operator()(const Void&) const { return 0.0; }
};

} // namespace

Real pressure(const Material& mat, Real rho, Real ein, const Cutoffs& cut) {
    const Real p = std::visit(PressureOp{rho, ein}, mat);
    return std::abs(p) < cut.pcut ? Real(0.0) : p;
}

Real sound_speed2(const Material& mat, Real rho, Real ein, const Cutoffs& cut) {
    return std::max(std::visit(SoundSpeed2Op{rho, ein}, mat), cut.ccut);
}

Real MaterialTable::pressure(Index region, Real rho, Real ein) const {
    BL_ASSERT(region >= 0 &&
              region < static_cast<Index>(materials.size()));
    return eos::pressure(materials[static_cast<std::size_t>(region)], rho, ein,
                         cutoffs);
}

Real MaterialTable::sound_speed2(Index region, Real rho, Real ein) const {
    BL_ASSERT(region >= 0 &&
              region < static_cast<Index>(materials.size()));
    return eos::sound_speed2(materials[static_cast<std::size_t>(region)], rho,
                             ein, cutoffs);
}

} // namespace bookleaf::eos
