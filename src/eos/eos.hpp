#pragma once
/// \file eos.hpp
/// Equations of state. BookLeaf provides ideal gas, Tait, and JWL, plus a
/// void material (paper §III-A). The EoS closes Euler's equations by
/// supplying pressure and sound speed from (density, specific internal
/// energy).

#include <variant>
#include <vector>

#include "util/types.hpp"

namespace bookleaf::eos {

/// P = (gamma - 1) rho e;  c^2 = gamma P / rho.
struct IdealGas {
    Real gamma = 1.4;
};

/// Tait (stiff liquid): P = B[(rho/rho0)^n - 1] + p_ref;
/// c^2 = dP/drho = (B n / rho0) (rho/rho0)^{n-1}.
struct Tait {
    Real rho0 = 1.0;
    Real b = 1.0;  ///< bulk modulus-like coefficient B
    Real n = 7.0;
    Real p_ref = 0.0;
};

/// Jones-Wilkins-Lee (detonation products), eta = rho / rho0:
/// P = A(1 - w eta/R1) exp(-R1/eta) + B(1 - w eta/R2) exp(-R2/eta)
///     + w rho e.
struct Jwl {
    Real rho0 = 1.0;
    Real a = 0.0, b = 0.0;
    Real r1 = 1.0, r2 = 1.0;
    Real omega = 0.3;
};

/// Void: zero pressure, floor sound speed.
struct Void {};

using Material = std::variant<IdealGas, Tait, Jwl, Void>;

/// Numerical cutoffs applied uniformly (BookLeaf's pcut/ccut).
struct Cutoffs {
    Real pcut = 1.0e-8; ///< |P| below this is snapped to zero
    Real ccut = 1.0e-6; ///< floor on the squared sound speed
};

/// Pressure from (rho, e) with the pcut snap applied.
[[nodiscard]] Real pressure(const Material& mat, Real rho, Real ein,
                            const Cutoffs& cut = {});

/// Squared adiabatic sound speed, floored at ccut.
[[nodiscard]] Real sound_speed2(const Material& mat, Real rho, Real ein,
                                const Cutoffs& cut = {});

/// Per-region material table: region r of the mesh evaluates via
/// `materials[r]`.
struct MaterialTable {
    std::vector<Material> materials;
    Cutoffs cutoffs;

    [[nodiscard]] Real pressure(Index region, Real rho, Real ein) const;
    [[nodiscard]] Real sound_speed2(Index region, Real rho, Real ein) const;
};

} // namespace bookleaf::eos
