#pragma once
/// \file csv.hpp
/// Small CSV table writer for time histories and bench output.

#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bookleaf::io {

/// Column-oriented CSV writer: set a header once, append rows, flushes on
/// destruction or close().
class CsvWriter {
public:
    CsvWriter(const std::string& path, const std::vector<std::string>& header)
        : out_(path) {
        util::require(static_cast<bool>(out_), "CsvWriter: cannot open " + path);
        // max_digits10: values round-trip exactly, so "diff == 0" checks
        // on dumped fields (the CI bitwise cross-rank gates) really do
        // compare bits, not prints.
        out_.precision(std::numeric_limits<Real>::max_digits10);
        for (std::size_t i = 0; i < header.size(); ++i)
            out_ << (i ? "," : "") << header[i];
        out_ << '\n';
        columns_ = header.size();
    }

    void row(const std::vector<Real>& values) {
        util::require(values.size() == columns_, "CsvWriter: wrong arity");
        for (std::size_t i = 0; i < values.size(); ++i)
            out_ << (i ? "," : "") << values[i];
        out_ << '\n';
    }

    void close() { out_.close(); }

private:
    std::ofstream out_;
    std::size_t columns_ = 0;
};

} // namespace bookleaf::io
