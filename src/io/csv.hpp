#pragma once
/// \file csv.hpp
/// Small CSV table writer for time histories and bench output.

#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace bookleaf::io {

/// Column-oriented CSV writer: set a header once, append rows, flushes on
/// destruction or close(). `Mode::append` continues an existing table
/// (restart-aware history files): rows go after the current contents and
/// the header is written only when the file is absent or empty — the
/// caller is responsible for the existing rows being a matching table
/// (core::Hydro's restore path performs that handshake).
class CsvWriter {
public:
    enum class Mode { truncate, append };

    CsvWriter(const std::string& path, const std::vector<std::string>& header,
              Mode mode = Mode::truncate) {
        // Probe before opening: tellp() on a fresh append stream is
        // implementation-defined until the first write.
        const bool had_rows = mode == Mode::append && [&] {
            std::ifstream probe(path, std::ios::binary | std::ios::ate);
            return probe && probe.tellg() > 0;
        }();
        out_.open(path, mode == Mode::append
                            ? std::ios::out | std::ios::app
                            : std::ios::out | std::ios::trunc);
        util::require(static_cast<bool>(out_), "CsvWriter: cannot open " + path);
        // max_digits10: values round-trip exactly, so "diff == 0" checks
        // on dumped fields (the CI bitwise cross-rank gates) really do
        // compare bits, not prints.
        out_.precision(std::numeric_limits<Real>::max_digits10);
        if (!had_rows) {
            for (std::size_t i = 0; i < header.size(); ++i)
                out_ << (i ? "," : "") << header[i];
            out_ << '\n';
        }
        columns_ = header.size();
    }

    void row(const std::vector<Real>& values) {
        util::require(values.size() == columns_, "CsvWriter: wrong arity");
        for (std::size_t i = 0; i < values.size(); ++i)
            out_ << (i ? "," : "") << values[i];
        out_ << '\n';
    }

    /// Push buffered rows to disk (e.g. before a checkpoint is written,
    /// so a crash cannot leave the table behind the snapshot).
    void flush() { out_.flush(); }

    void close() { out_.close(); }

private:
    std::ofstream out_;
    std::size_t columns_ = 0;
};

} // namespace bookleaf::io
