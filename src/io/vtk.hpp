#pragma once
/// \file vtk.hpp
/// Legacy-VTK unstructured-grid writer for visualising runs (cell fields:
/// density, pressure, internal energy, viscosity; point field: velocity).
/// Values are printed at max_digits10 so they round-trip exactly — a
/// dumped file can be diffed bitwise, the same contract as CsvWriter —
/// and each file carries a FIELD block with the step count (CYCLE) and
/// simulation time (TIME), so CI can pair and compare dumps.

#include <string>

#include "hydro/state.hpp"
#include "mesh/mesh.hpp"

namespace bookleaf::io {

/// Write the current state as an ASCII legacy .vtk file. `step` and `t`
/// are recorded in the CELL_DATA FIELD block (the conventional CYCLE /
/// TIME metadata ParaView and VisIt read). Throws util::Error if the file
/// cannot be opened.
void write_vtk(const std::string& path, const mesh::Mesh& mesh,
               const hydro::State& state, int step = 0, Real t = 0.0);

} // namespace bookleaf::io
