#pragma once
/// \file vtk.hpp
/// Legacy-VTK unstructured-grid writer for visualising runs (cell fields:
/// density, pressure, internal energy, viscosity; point field: velocity).

#include <string>

#include "hydro/state.hpp"
#include "mesh/mesh.hpp"

namespace bookleaf::io {

/// Write the current state as an ASCII legacy .vtk file. Throws
/// util::Error if the file cannot be opened.
void write_vtk(const std::string& path, const mesh::Mesh& mesh,
               const hydro::State& state);

} // namespace bookleaf::io
