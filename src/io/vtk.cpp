#include "io/vtk.hpp"

#include <fstream>
#include <limits>
#include <span>

#include "util/error.hpp"

namespace bookleaf::io {

void write_vtk(const std::string& path, const mesh::Mesh& mesh,
               const hydro::State& s, int step, Real t) {
    std::ofstream out(path);
    util::require(static_cast<bool>(out), "write_vtk: cannot open " + path);
    // max_digits10, as in CsvWriter: dumped values round-trip exactly, so
    // a bitwise diff of two VTK files really compares field bits.
    out.precision(std::numeric_limits<Real>::max_digits10);

    const Index n_nodes = mesh.n_nodes();
    const Index n_cells = mesh.n_cells();

    out << "# vtk DataFile Version 3.0\n"
        << "BookLeaf-CPP output\n"
        << "ASCII\n"
        << "DATASET UNSTRUCTURED_GRID\n"
        << "POINTS " << n_nodes << " double\n";
    for (Index n = 0; n < n_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        out << s.x[ni] << ' ' << s.y[ni] << " 0\n";
    }

    out << "CELLS " << n_cells << ' ' << n_cells * 5 << '\n';
    for (Index c = 0; c < n_cells; ++c) {
        out << 4;
        for (int k = 0; k < corners_per_cell; ++k) out << ' ' << mesh.cn(c, k);
        out << '\n';
    }
    out << "CELL_TYPES " << n_cells << '\n';
    for (Index c = 0; c < n_cells; ++c) out << "9\n"; // VTK_QUAD

    // Step/time metadata as the conventional CYCLE / TIME field arrays,
    // so a dump records *when* it was taken and CI can pair files.
    out << "CELL_DATA " << n_cells << '\n'
        << "FIELD FieldData 2\n"
        << "CYCLE 1 1 int\n"
        << step << '\n'
        << "TIME 1 1 double\n"
        << t << '\n';
    const auto cell_field = [&](const char* name, std::span<const Real> f) {
        out << "SCALARS " << name << " double 1\nLOOKUP_TABLE default\n";
        for (Index c = 0; c < n_cells; ++c)
            out << f[static_cast<std::size_t>(c)] << '\n';
    };
    cell_field("density", s.rho);
    cell_field("pressure", s.pre);
    cell_field("internal_energy", s.ein);
    cell_field("viscosity", s.q);

    out << "POINT_DATA " << n_nodes << '\n'
        << "VECTORS velocity double\n";
    for (Index n = 0; n < n_nodes; ++n) {
        const auto ni = static_cast<std::size_t>(n);
        out << s.u[ni] << ' ' << s.v[ni] << " 0\n";
    }
    util::require(static_cast<bool>(out), "write_vtk: write failed for " + path);
}

} // namespace bookleaf::io
