/// \file bench_ablation_dope_vectors.cpp
/// Ablation for §IV-D: CUDA Fortran dope-vector transfers. "When an
/// assumed-size array is used as a parameter to a device kernel, the
/// runtime transfers the dope vector … 72-96 bytes per array … for each
/// kernel run … the viscosity kernel runtime is improved from 4.23
/// seconds to 2.2 seconds" once the sizes are fixed. The simulated device
/// reproduces the mechanism; this bench sweeps the array count.

#include <cstdio>

#include "device/device.hpp"
#include "perfmodel/model.hpp"

using namespace bookleaf;
using namespace bookleaf::perfmodel;

int main() {
    std::printf("=== Ablation: CUDA Fortran dope-vector transfers (§IV-D) ===\n\n");

    // The paper's observation is per-kernel over a full run; model the
    // viscosity kernel at a scale where the fixed version costs ~2.2 s.
    const auto& work = reference_work().at(util::Kernel::getq);
    const auto backend = p100_cuda(false);
    const double n_cells = 5.0e4; // a small problem set, as in §IV-D
    const double launches = 2 * 2000; // two invocations per step

    std::printf("%-10s %14s %14s %10s\n", "arrays", "fixed-size(s)",
                "assumed(s)", "slowdown");
    for (const int n_arrays : {4, 8, 12, 16, 24}) {
        device::Device fixed("fixed", backend.rate, backend.bandwidth,
                             backend.pcie, {});
        device::Device assumed("assumed", backend.rate, backend.bandwidth,
                               backend.pcie,
                               {.launch_latency_s = 8e-6,
                                .dope_vector_bytes = 84});
        const double t_fixed = launches * fixed.launch(work.flops, work.bytes,
                                                       n_cells, n_arrays,
                                                       backend.getq_occupancy);
        const double t_assumed =
            launches * assumed.launch(work.flops, work.bytes, n_cells,
                                      n_arrays, backend.getq_occupancy);
        std::printf("%-10d %14.2f %14.2f %9.2fx\n", n_arrays, t_fixed,
                    t_assumed, t_assumed / t_fixed);
    }
    std::printf("\npaper: viscosity kernel 4.23 s -> 2.2 s after fixing the "
                "array sizes (1.9x)\n");
    return 0;
}
