/// \file bench_fig1_overall.cpp
/// Regenerates **Figure 1** of the paper: overall execution time of the
/// Noh problem on a single node, one bar per configuration.

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>

#include "perfmodel/paper_data.hpp"

using namespace bookleaf::perfmodel;

int main() {
    std::printf("=== Figure 1: overall single-node time, Noh problem ===\n\n");
    std::printf("%-18s %10s %10s   %s\n", "Config", "model(s)", "paper(s)",
                "bar (model)");
    double max_model = 0;
    for (int c = 0; c < config_count; ++c)
        max_model = std::max(
            max_model,
            model_noh(static_cast<Config>(c), reference_work()).overall);

    for (int c = 0; c < config_count; ++c) {
        const auto config = static_cast<Config>(c);
        const auto b = model_noh(config, reference_work());
        const auto& paper = paper_table2().at(config);
        const int width = static_cast<int>(50.0 * b.overall / max_model);
        std::printf("%-18s %10.1f %10.1f   %s\n", config_name(config).c_str(),
                    b.overall, paper.overall, std::string(width, '#').c_str());
    }
    std::printf("\nOrdering (fastest to slowest, model): ");
    // Simple selection print.
    std::array<int, config_count> order;
    for (int i = 0; i < config_count; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [](int a, int b) {
        return model_noh(static_cast<Config>(a), reference_work()).overall <
               model_noh(static_cast<Config>(b), reference_work()).overall;
    });
    for (const int c : order)
        std::printf("%s%s", config_name(static_cast<Config>(c)).c_str(),
                    c == order.back() ? "\n" : " < ");
    return 0;
}
