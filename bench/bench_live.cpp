/// \file bench_live.cpp
/// Overhead of live run monitoring: the same distributed Sod rig run
/// with monitoring off, with window streaming on, and with streaming
/// plus an armed watchdog — reporting wall time, the per-window cost
/// implied by the deltas, and the per-window byte volume the tag-502
/// stream adds. Every combination is checked against the passivity
/// contract: monitoring must never change a gathered byte.
///
/// The interesting number is the marginal cost of a window: one
/// 13-Real fold + one nonblocking send per rank per `window_steps`
/// steps, drained on rank 0 between steps. It should be far below the
/// noise floor of a step.

#include <cmath>
#include <cstdio>

#include "dist/distributed.hpp"
#include "obs/live.hpp"
#include "setup/problems.hpp"
#include "util/timer.hpp"

using namespace bookleaf;

namespace {

struct RigResult {
    double wall = 0.0;
    long windows = 0;
    dist::Result fields;
};

RigResult run_rig(const setup::Problem& p, int ranks, Real t_end,
                  long window_steps, double watchdog_factor) {
    dist::Options opts;
    opts.n_ranks = ranks;
    opts.t_end = t_end;
    opts.hydro = p.hydro;
    opts.ale = p.ale;
    opts.telemetry.window_steps = window_steps;
    opts.telemetry.watchdog_factor = watchdog_factor;
    RigResult out;
    const util::Timer timer;
    out.fields = dist::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
    out.wall = timer.elapsed();
    out.windows = static_cast<long>(out.fields.windows.size());
    return out;
}

void rig(const char* name, const setup::Problem& p, Real t_end,
         long window_steps) {
    constexpr int ranks = 4;
    std::printf("%s, %d ranks, window every %ld steps:\n", name, ranks,
                window_steps);
    std::printf("  %-28s %9s %9s %14s\n", "configuration", "wall(s)",
                "windows", "cost/window(us)");

    const auto off = run_rig(p, ranks, t_end, 0, 0.0);
    const auto live = run_rig(p, ranks, t_end, window_steps, 0.0);
    const auto watched = run_rig(p, ranks, t_end, window_steps, 4.0);

    const auto row = [&](const char* label, const RigResult& r) {
        const double delta_us = (r.wall - off.wall) * 1e6;
        std::printf("  %-28s %9.3f %9ld %14.2f\n", label, r.wall, r.windows,
                    r.windows > 0 ? delta_us / static_cast<double>(r.windows)
                                  : 0.0);
    };
    row("monitoring off", off);
    row("window stream", live);
    row("window stream + watchdog", watched);

    const bool bitwise = dist::bitwise_equal(off.fields, live.fields) &&
                         dist::bitwise_equal(off.fields, watched.fields);
    // The stream volume: window_reals Reals per rank per window, dwarfed
    // by a single halo exchange.
    const double stream_kb = static_cast<double>(live.windows) * ranks *
                             static_cast<double>(obs::window_reals) *
                             sizeof(Real) / 1024.0;
    std::printf("  stream volume %.2f KiB over the run; results %s\n\n",
                stream_kb,
                bitwise ? "bitwise identical"
                        : "MISMATCH (passivity violated!)");
}

} // namespace

int main() {
    std::printf("=== Live monitoring overhead: window stream + watchdog on "
                "the distributed driver ===\n\n");
    std::printf(
        "Each rank folds its recent step records into one 13-Real window\n"
        "every `window_steps` steps and streams it to rank 0 (tag 502,\n"
        "nonblocking, drained between steps); the watchdog adds one\n"
        "relaxed atomic store per step plus a rank-0 supervisor thread.\n"
        "Monitoring off skips every hook.\n\n");
    rig("Sod 200x4", setup::sod(200, 4), 0.2, 10);
    rig("Noh 48x48", setup::noh(48), 0.25, 10);
    return 0;
}
