/// \file bench_fig3_strong_scaling.cpp
/// Regenerates **Figure 3** of the paper: overall execution time for the
/// Sod problem when strong scaling over 8-64 Cray XC50 nodes (hybrid
/// model), Skylake vs Broadwell, through the cluster model. The paper's
/// key observations: superlinear speedup from 8 to 16 nodes (cache
/// capacity), near-linear scaling beyond, Skylake below Broadwell with
/// the same curve shape, negligible communication.

#include <cmath>
#include <cstdio>

#include "perfmodel/clustersim.hpp"

using namespace bookleaf::perfmodel;

int main() {
    std::printf("=== Figure 3: Sod strong scaling, overall time ===\n\n");
    const std::vector<int> nodes = {8, 16, 32, 64};

    for (const auto& platform : {skylake(), broadwell()}) {
        const auto pts =
            strong_scaling(platform, reference_work(), {}, {}, nodes);
        std::printf("%s\n", platform.name.c_str());
        std::printf("  %6s %12s %10s %12s %10s %8s\n", "nodes", "time(s)",
                    "log10", "speedup", "efficiency", "comm(s)");
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const double speedup = pts[0].overall / pts[i].overall;
            const double ideal = pts[i].nodes / double(pts[0].nodes);
            std::printf("  %6d %12.1f %10.2f %11.2fx %9.0f%% %8.1f\n",
                        pts[i].nodes, pts[i].overall,
                        std::log10(pts[i].overall), speedup,
                        100.0 * speedup / ideal, pts[i].comm);
        }
        const double s16 = pts[0].overall / pts[1].overall;
        std::printf("  8 -> 16 nodes: %.2fx (%s; paper reports superlinear)\n\n",
                    s16, s16 > 2.0 ? "superlinear" : "sublinear");
    }
    return 0;
}
