/// \file bench_fig3_strong_scaling.cpp
/// Regenerates **Figure 3** of the paper: overall execution time for the
/// Sod problem when strong scaling over 8-64 Cray XC50 nodes (hybrid
/// model), Skylake vs Broadwell, through the cluster model. The paper's
/// key observations: superlinear speedup from 8 to 16 nodes (cache
/// capacity), near-linear scaling beyond, Skylake below Broadwell with
/// the same curve shape, negligible communication.

#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "perfmodel/clustersim.hpp"
#include "util/cli.hpp"

using namespace bookleaf::perfmodel;

int main(int argc, char** argv) {
    const bookleaf::util::Cli cli(argc, argv);
    std::printf("=== Figure 3: Sod strong scaling, overall time ===\n\n");
    const std::vector<int> nodes = {8, 16, 32, 64};

    namespace obs = bookleaf::obs;
    auto doc = obs::Json::object();
    doc["schema"] = obs::Json("bookleaf.bench/1");
    doc["bench"] = obs::Json("fig3_strong_scaling");
    auto& platforms = doc["platforms"];
    platforms = obs::Json::object();

    for (const auto& platform : {skylake(), broadwell()}) {
        const auto pts =
            strong_scaling(platform, reference_work(), {}, {}, nodes);
        std::printf("%s\n", platform.name.c_str());
        std::printf("  %6s %12s %10s %12s %10s %8s\n", "nodes", "time(s)",
                    "log10", "speedup", "efficiency", "comm(s)");
        auto points = obs::Json::array();
        for (std::size_t i = 0; i < pts.size(); ++i) {
            const double speedup = pts[0].overall / pts[i].overall;
            const double ideal = pts[i].nodes / double(pts[0].nodes);
            std::printf("  %6d %12.1f %10.2f %11.2fx %9.0f%% %8.1f\n",
                        pts[i].nodes, pts[i].overall,
                        std::log10(pts[i].overall), speedup,
                        100.0 * speedup / ideal, pts[i].comm);
            auto point = obs::Json::object();
            point["nodes"] = obs::Json(pts[i].nodes);
            point["overall_model_s"] = obs::Json(pts[i].overall);
            point["comm_model_s"] = obs::Json(pts[i].comm);
            point["speedup"] = obs::Json(speedup);
            point["efficiency"] = obs::Json(speedup / ideal);
            points.push_back(point);
        }
        platforms[platform.name] = points;
        const double s16 = pts[0].overall / pts[1].overall;
        std::printf("  8 -> 16 nodes: %.2fx (%s; paper reports superlinear)\n\n",
                    s16, s16 > 2.0 ? "superlinear" : "sublinear");
    }

    if (cli.has("json")) {
        const auto path = cli.get("json", "BENCH_fig3.json");
        obs::write_json_file(path, doc);
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
