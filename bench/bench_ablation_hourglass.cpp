/// \file bench_ablation_hourglass.cpp
/// Ablation of the hourglass controls (§III-A): none vs the Hancock
/// filter [24] vs Caramana-Shashkov sub-zonal pressures [25], on the
/// Saltzmann piston — the problem "designed to exacerbate hourglass
/// modes". Reports shock fidelity, residual hourglass amplitude, mesh
/// quality, and cost.

#include <array>
#include <cmath>
#include <cstdio>

#include "analytic/exact.hpp"
#include "core/driver.hpp"
#include "geom/geometry.hpp"
#include "setup/problems.hpp"

using namespace bookleaf;

namespace {

Real hourglass_amplitude(const mesh::Mesh& mesh, const hydro::State& s) {
    static constexpr std::array<Real, 4> gamma = {1, -1, 1, -1};
    Real sum = 0;
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        Real hu = 0, hv = 0;
        for (int k = 0; k < 4; ++k) {
            const auto n = static_cast<std::size_t>(mesh.cn(c, k));
            hu += gamma[static_cast<std::size_t>(k)] * s.u[n];
            hv += gamma[static_cast<std::size_t>(k)] * s.v[n];
        }
        sum += hu * hu + hv * hv;
    }
    return std::sqrt(sum / mesh.n_cells());
}

} // namespace

int main() {
    std::printf("=== Ablation: hourglass control on the Saltzmann piston ===\n\n");
    std::printf("%-12s %10s %12s %12s %12s %10s\n", "control", "steps",
                "rho(shock)", "hg-residual", "min volume", "wall(s)");

    const auto exact = analytic::piston_exact(5.0 / 3.0, 1.0, 1.0);
    for (const auto* control : {"none", "filter", "subzonal", "both"}) {
        auto problem = setup::saltzmann(100, 10);
        problem.t_end = 0.5;
        problem.hydro.hourglass.subzonal_pressures =
            std::string(control) == "subzonal" || std::string(control) == "both";
        problem.hydro.hourglass.filter_kappa =
            (std::string(control) == "filter" || std::string(control) == "both")
                ? 0.5
                : 0.0;
        core::Hydro h(std::move(problem));
        try {
            const auto summary = h.run();
            Real shocked = 0;
            int n_shocked = 0;
            for (Index c = 0; c < h.mesh().n_cells(); ++c) {
                Real cx = 0;
                for (int k = 0; k < 4; ++k)
                    cx += h.state().x[static_cast<std::size_t>(
                              h.mesh().cn(c, k))] /
                          4;
                if (cx > 0.54 && cx < 0.62) {
                    shocked += h.state().rho[static_cast<std::size_t>(c)];
                    ++n_shocked;
                }
            }
            // Mesh quality at the final (deformed) positions.
            mesh::Mesh deformed = h.mesh();
            deformed.x.assign(h.state().x.begin(), h.state().x.end());
            deformed.y.assign(h.state().y.begin(), h.state().y.end());
            const auto q = geom::mesh_quality(deformed);
            std::printf("%-12s %10d %12.3f %12.2e %12.2e %10.2f\n", control,
                        summary.steps,
                        n_shocked ? shocked / n_shocked : 0.0,
                        hourglass_amplitude(h.mesh(), h.state()), q.min_area,
                        summary.wall_seconds);
        } catch (const util::Error& e) {
            std::printf("%-12s %10s   FAILED: %s\n", control, "-", e.what());
        }
    }
    std::printf("\nexact shocked density: %.1f; smaller hg-residual and "
                "positive min volume = better control\n",
                exact.rho_shocked);
    return 0;
}
