/// \file bench_fig4_kernel_scaling.cpp
/// Regenerates **Figure 4** of the paper: per-kernel execution times for
/// the Sod problem when strong scaling — (a) the viscosity kernel,
/// (b) the acceleration kernel. Both carry a halo exchange, and both must
/// show the same superlinear-then-linear shape as the overall curve.

#include <cmath>
#include <cstdio>

#include "perfmodel/clustersim.hpp"

using namespace bookleaf::perfmodel;

namespace {

void figure(const char* title, double ScalingPoint::*member) {
    std::printf("%s\n", title);
    const std::vector<int> nodes = {8, 16, 32, 64};
    for (const auto& platform : {skylake(), broadwell()}) {
        const auto pts =
            strong_scaling(platform, reference_work(), {}, {}, nodes);
        std::printf("  %-12s", platform.name.find("Skylake") != std::string::npos
                                   ? "Skylake"
                                   : "Broadwell");
        for (const auto& p : pts) std::printf(" %5d:%9.1fs", p.nodes, p.*member);
        const double s16 = pts[0].*member / pts[1].*member;
        std::printf("   8->16: %.2fx\n", s16);
    }
    std::printf("\n");
}

} // namespace

int main() {
    std::printf("=== Figure 4: per-kernel strong scaling, Sod problem ===\n\n");
    figure("Figure 4a: viscosity calculation kernel", &ScalingPoint::viscosity);
    figure("Figure 4b: acceleration calculation kernel",
           &ScalingPoint::acceleration);
    return 0;
}
