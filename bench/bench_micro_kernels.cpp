/// \file bench_micro_kernels.cpp
/// Google-benchmark microbenchmarks of the real hydro kernels on this
/// host — the measured counterpart of the performance model (and the
/// input to perfmodel::calibrate). Each benchmark reports per-cell cost
/// so different mesh sizes can be compared directly.

#include <benchmark/benchmark.h>

#include "ale/remap.hpp"
#include "hydro/kernels.hpp"
#include "mesh/generator.hpp"
#include "par/coloring.hpp"
#include "setup/problems.hpp"
#include "util/csr.hpp"

using namespace bookleaf;

namespace {

struct Rig {
    setup::Problem problem;
    hydro::State state;
    util::Profiler profiler;
    hydro::Context ctx;

    explicit Rig(Index n) : problem(setup::noh(n)) {
        state = hydro::allocate(problem.mesh);
        state.rho.assign(problem.rho.begin(), problem.rho.end());
        state.ein.assign(problem.ein.begin(), problem.ein.end());
        state.u.assign(problem.u.begin(), problem.u.end());
        state.v.assign(problem.v.begin(), problem.v.end());
        hydro::initialise(problem.mesh, problem.materials, state);
        ctx.mesh = &problem.mesh;
        ctx.materials = &problem.materials;
        ctx.opts = problem.hydro;
        ctx.profiler = &profiler;
        // A couple of steps so the state is dynamically interesting.
        hydro::lagstep(ctx, state, 1e-4);
        hydro::lagstep(ctx, state, 1e-4);
    }
};

template <typename KernelFn>
void run_kernel_bench(benchmark::State& bench_state, KernelFn&& kernel) {
    Rig rig(static_cast<Index>(bench_state.range(0)));
    for (auto _ : bench_state) {
        kernel(rig);
        benchmark::ClobberMemory();
    }
    bench_state.counters["cells"] = static_cast<double>(
        rig.problem.mesh.n_cells());
    bench_state.SetItemsProcessed(bench_state.iterations() *
                                  rig.problem.mesh.n_cells());
}

} // namespace

#define KERNEL_BENCH(name, body)                                              \
    static void BM_##name(benchmark::State& s) {                              \
        run_kernel_bench(s, [](Rig& rig) { body; });                          \
    }                                                                          \
    BENCHMARK(BM_##name)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond)

KERNEL_BENCH(getq, hydro::getq(rig.ctx, rig.state));
KERNEL_BENCH(getforce, hydro::getforce(rig.ctx, rig.state));
KERNEL_BENCH(getacc, hydro::getacc(rig.ctx, rig.state, 1e-4));
KERNEL_BENCH(getgeom, hydro::getgeom(rig.ctx, rig.state, rig.state.u0,
                                     rig.state.v0, 5e-5));
KERNEL_BENCH(getrho, hydro::getrho(rig.ctx, rig.state));
KERNEL_BENCH(getein, hydro::getein(rig.ctx, rig.state, rig.state.ubar,
                                   rig.state.vbar, 1e-4));
KERNEL_BENCH(getpc, hydro::getpc(rig.ctx, rig.state));
KERNEL_BENCH(getdt, benchmark::DoNotOptimize(
                        hydro::getdt(rig.ctx, rig.state, 1e-4)));
KERNEL_BENCH(lagstep, hydro::lagstep(rig.ctx, rig.state, 1e-5));

// ---------------------------------------------------------------------------
// Acceleration nodal-assembly strategies (the §IV-B data dependency):
// serial scatter (paper-faithful) vs conflict-coloured scatter vs the
// default gather, at 1 and 2 threads on the Noh rig. This is the
// tentpole comparison BENCH_*.json tracks.
// ---------------------------------------------------------------------------

namespace {

void assembly_bench(benchmark::State& bench_state, par::Assembly mode,
                    int threads) {
    Rig rig(static_cast<Index>(bench_state.range(0)));
    par::ThreadPool pool(threads);
    par::Exec exec;
    if (threads > 1) exec.pool = &pool;
    exec.assembly = mode;
    rig.ctx.exec = exec;

    par::Coloring coloring;
    if (mode == par::Assembly::colored_scatter) {
        coloring = par::build_scatter_coloring(rig.problem.mesh);
        rig.ctx.scatter_coloring = &coloring;
    }

    for (auto _ : bench_state) {
        hydro::getacc(rig.ctx, rig.state, 1e-4);
        benchmark::ClobberMemory();
    }
    bench_state.counters["cells"] =
        static_cast<double>(rig.problem.mesh.n_cells());
    bench_state.SetItemsProcessed(bench_state.iterations() *
                                  rig.problem.mesh.n_cells());
}

} // namespace

#define ASSEMBLY_BENCH(name, mode, threads)                                    \
    static void BM_getacc_##name(benchmark::State& s) {                        \
        assembly_bench(s, mode, threads);                                      \
    }                                                                          \
    BENCHMARK(BM_getacc_##name)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond)

ASSEMBLY_BENCH(scatter_serial_t1, par::Assembly::serial_scatter, 1);
ASSEMBLY_BENCH(scatter_serial_t2, par::Assembly::serial_scatter, 2);
ASSEMBLY_BENCH(scatter_colored_t2, par::Assembly::colored_scatter, 2);
ASSEMBLY_BENCH(gather_t1, par::Assembly::gather, 1);
ASSEMBLY_BENCH(gather_t2, par::Assembly::gather, 2);

static void BM_alestep_eulerian(benchmark::State& s) {
    Rig rig(static_cast<Index>(s.range(0)));
    ale::Options opts;
    opts.mode = ale::Mode::eulerian;
    ale::Workspace work;
    for (auto _ : s) {
        hydro::lagstep(rig.ctx, rig.state, 1e-5);
        ale::alestep(rig.ctx, rig.state, opts, work);
    }
    s.SetItemsProcessed(s.iterations() * rig.problem.mesh.n_cells());
}
BENCHMARK(BM_alestep_eulerian)->Arg(32)->Arg(64)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
