/// \file bench_ablation_partitioner.cpp
/// Ablation of the decomposition strategy (§III-A: "a simple RCB strategy
/// or a hypergraph strategy via METIS"): edge cut, balance, ghost-layer
/// volume and partitioning cost for RCB vs the multilevel
/// METIS-substitute, across part counts. Also demonstrates the serial
/// partitioning bottleneck the paper blames for the missing flat-MPI
/// scaling study (§V-C).

#include <cstdio>

#include "mesh/generator.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"
#include "setup/problems.hpp"
#include "util/timer.hpp"

using namespace bookleaf;

int main() {
    std::printf("=== Ablation: RCB vs multilevel (METIS-substitute) ===\n\n");
    const auto m = mesh::generate_rect({.nx = 192, .ny = 192});
    std::printf("mesh: %d cells\n\n", m.n_cells());
    std::printf("%-12s %8s %10s %10s %12s %12s\n", "partitioner", "parts",
                "edge cut", "imbalance", "ghosts", "time(ms)");

    for (const int parts : {2, 4, 8, 16, 32}) {
        for (const auto* name : {"rcb", "multilevel"}) {
            util::Timer timer;
            const auto part = std::string(name) == "rcb"
                                  ? part::rcb(m, parts)
                                  : part::multilevel(m, parts);
            const double ms = timer.elapsed() * 1e3;
            const auto q = part::quality(m, part, parts);
            const auto subs = part::decompose(m, part, parts);
            std::size_t ghosts = 0;
            for (const auto& sub : subs)
                ghosts += sub.local_cells.size() -
                          static_cast<std::size_t>(sub.n_owned_cells);
            std::printf("%-12s %8d %10d %10.3f %12zu %12.2f\n", name, parts,
                        q.edge_cut, q.imbalance, ghosts, ms);
        }
    }

    // The serial-partitioner bottleneck: cost grows with mesh size while
    // everything else scales out (paper §V-C).
    std::printf("\nserial RCB cost vs mesh size (the paper's scaling "
                "bottleneck):\n");
    for (const Index n : {64, 128, 256, 384}) {
        const auto big = mesh::generate_rect({.nx = n, .ny = n});
        util::Timer timer;
        (void)part::rcb(big, 64);
        std::printf("  %4dx%-4d -> %7.2f ms\n", n, n, timer.elapsed() * 1e3);
    }
    return 0;
}
