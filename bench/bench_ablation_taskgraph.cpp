/// \file bench_ablation_taskgraph.cpp
/// Schedule ablation for the task-graph executor: the same decks stepped
/// under par::Schedule::forkjoin (a full pool barrier between kernels —
/// the paper's bulk-synchronous structure) and par::Schedule::taskgraph
/// (dependency-graph execution over cell/node blocks, so independent
/// subranges from adjacent kernels overlap). Reports per-step wall time
/// per thread count on three rigs:
///   * sod (lagrange)  — the Lagrangian predictor/corrector step graph;
///   * sod (eulerian)  — adds the ALE advection graph on every step;
///   * noh (lagrange)  — the compression-dominated kernel mix.
/// Every (rig, threads) pair is verified against the bitwise-identity
/// contract: the two schedules must produce byte-equal state. `--json
/// [path]` writes a bookleaf.bench/1 document.

#include <cstdio>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "obs/json.hpp"
#include "par/exec.hpp"
#include "par/thread_pool.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace bookleaf;

namespace {

struct Rig {
    const char* name;
    setup::Problem (*make)();
    int steps;
};

setup::Problem sod_lagrange() { return setup::sod(192, 8); }
setup::Problem sod_eulerian() {
    auto p = setup::sod(192, 8);
    p.ale.mode = ale::Mode::eulerian;
    return p;
}
setup::Problem noh_lagrange() { return setup::noh(48); }

struct Sample {
    double wall = 0.0;
    int steps = 0;
    std::vector<Real> rho, u;
    [[nodiscard]] double per_step_ms() const {
        return steps > 0 ? 1e3 * wall / steps : 0.0;
    }
};

Sample run_once(const Rig& rig, par::ThreadPool* pool,
                par::Schedule schedule) {
    core::Hydro h(rig.make());
    par::Exec ex;
    ex.pool = pool;
    ex.schedule = schedule;
    h.set_exec(ex);
    const util::Timer timer;
    const auto summary = h.run(std::nullopt, rig.steps);
    Sample s;
    s.wall = timer.elapsed();
    s.steps = summary.steps;
    s.rho.assign(h.state().rho.begin(), h.state().rho.end());
    s.u.assign(h.state().u.begin(), h.state().u.end());
    return s;
}

} // namespace

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);
    const Rig rigs[] = {{"sod (lagrange)", sod_lagrange, 60},
                        {"sod (eulerian)", sod_eulerian, 40},
                        {"noh (lagrange)", noh_lagrange, 40}};
    const int thread_counts[] = {1, 2, 4, 8};

    auto doc = obs::Json::object();
    doc["schema"] = obs::Json("bookleaf.bench/1");
    doc["bench"] = obs::Json("ablation_taskgraph");
    auto rows = obs::Json::array();

    bool all_bitwise = true;
    for (const auto& rig : rigs) {
        std::printf("%s, %d steps:\n", rig.name, rig.steps);
        std::printf("  %7s %18s %18s %9s %8s\n", "threads",
                    "forkjoin ms/step", "taskgraph ms/step", "speedup",
                    "bitwise");
        for (const int threads : thread_counts) {
            par::ThreadPool pool(threads);
            par::ThreadPool* p = threads > 1 ? &pool : nullptr;
            const auto fj = run_once(rig, p, par::Schedule::forkjoin);
            const auto tg = run_once(rig, p, par::Schedule::taskgraph);
            const bool bitwise = fj.steps == tg.steps && fj.rho == tg.rho &&
                                 fj.u == tg.u;
            all_bitwise = all_bitwise && bitwise;
            const double speedup =
                tg.wall > 0.0 ? fj.wall / tg.wall : 0.0;
            std::printf("  %7d %18.3f %18.3f %8.2fx %8s\n", threads,
                        fj.per_step_ms(), tg.per_step_ms(), speedup,
                        bitwise ? "yes" : "NO");
            auto row = obs::Json::object();
            row["rig"] = obs::Json(rig.name);
            row["threads"] = obs::Json(threads);
            row["steps"] = obs::Json(tg.steps);
            row["forkjoin_ms_per_step"] = obs::Json(fj.per_step_ms());
            row["taskgraph_ms_per_step"] = obs::Json(tg.per_step_ms());
            row["speedup"] = obs::Json(speedup);
            row["bitwise"] = obs::Json(bitwise);
            rows.push_back(std::move(row));
        }
        std::printf("\n");
    }
    doc["rows"] = std::move(rows);
    doc["all_bitwise"] = obs::Json(all_bitwise);

    if (cli.has("json")) {
        const auto path = cli.get("json", "BENCH_ablation_taskgraph.json");
        obs::write_json_file(path, doc);
        std::printf("wrote %s\n", path.c_str());
    }
    std::printf("schedule ablation %s\n",
                all_bitwise ? "bitwise-identical across all configurations"
                            : "BITWISE MISMATCH");
    return all_bitwise ? 0 : 1;
}
