/// \file bench_fig2_kernels.cpp
/// Regenerates **Figure 2** of the paper: per-kernel execution times for
/// the Noh problem on a single node — (a) the viscosity kernel, (b) the
/// acceleration kernel.
///
///   ./bench_fig2_kernels [--json BENCH_fig2.json]
///
/// With --json, the model values and the measured acceleration-assembly
/// times are also written as a "bookleaf.bench/1" document so CI can
/// persist the perf trajectory (scripts/compare_bench.py diffs two such
/// files and flags regressions on the *_s keys).

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/driver.hpp"
#include "obs/json.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/paper_data.hpp"
#include "setup/problems.hpp"
#include "util/cli.hpp"

using namespace bookleaf::perfmodel;
using bookleaf::util::Kernel;

namespace {

void figure(const char* title, Kernel kernel,
            double PaperRow::*paper_member) {
    std::printf("%s\n\n", title);
    double max_model = 0;
    for (int c = 0; c < config_count; ++c)
        max_model = std::max(max_model,
                             model_noh(static_cast<Config>(c), reference_work())
                                 .at(kernel));
    std::printf("%-18s %10s %10s   %s\n", "Config", "model(s)", "paper(s)",
                "bar (model)");
    for (int c = 0; c < config_count; ++c) {
        const auto config = static_cast<Config>(c);
        const double model =
            model_noh(config, reference_work()).at(kernel);
        const double paper = paper_table2().at(config).*paper_member;
        const int width = static_cast<int>(50.0 * model / max_model);
        std::printf("%-18s %10.1f %10.1f   %s\n", config_name(config).c_str(),
                    model, paper, std::string(width, '#').c_str());
    }
    std::printf("\n");
}

} // namespace

int main(int argc, char** argv) {
    const bookleaf::util::Cli cli(argc, argv);
    figure("=== Figure 2a: viscosity calculation kernel (getq) ===",
           Kernel::getq, &PaperRow::viscosity);
    figure("=== Figure 2b: acceleration calculation kernel (getacc) ===",
           Kernel::getacc, &PaperRow::acceleration);

    // The paper's headline observation for this figure: the hybrid
    // viscosity is within a few percent of flat MPI while the hybrid
    // acceleration suffers from the data dependency.
    const auto skl = model_noh(Config::skl_mpi, reference_work());
    const auto skl_h = model_noh(Config::skl_hybrid, reference_work());
    std::printf("hybrid/flat (Skylake): viscosity %.2fx, acceleration %.2fx\n",
                skl_h.at(Kernel::getq) / skl.at(Kernel::getq),
                skl_h.at(Kernel::getacc) / skl.at(Kernel::getacc));

    // --- measured counterpart on this host: the acceleration kernel under
    // the three assembly strategies (Fig. 2b's data dependency, and the
    // gather that removes it). Noh 64x64, 30 steps per variant.
    namespace bl = bookleaf;
    std::printf("\n=== Measured acceleration assembly on this host "
                "(Noh 64x64, 30 steps, 2 threads) ===\n");
    auto measure = [](bl::par::Assembly assembly) {
        bl::core::Hydro h(bl::setup::noh(64));
        bl::par::ThreadPool pool(2);
        bl::par::Exec exec;
        exec.pool = &pool;
        h.set_exec(exec);
        h.set_assembly(assembly);
        h.run(std::nullopt, 30);
        return h.profiler().stats(Kernel::getacc).wall_s;
    };
    const double t_serial = measure(bl::par::Assembly::serial_scatter);
    const double t_colored = measure(bl::par::Assembly::colored_scatter);
    const double t_gather = measure(bl::par::Assembly::gather);

    // One more instrumented run keeping the FULL kernel breakdown: its
    // per-kernel {wall_s, calls, items} counters become the document's
    // "measured_kernels" — the shape perfmodel::calibrate_from_document
    // consumes, closing the calibration loop CI gates on
    // (scripts/check_perfmodel.py).
    bl::core::Hydro instrumented(bl::setup::noh(64));
    {
        bl::par::ThreadPool pool(2);
        bl::par::Exec exec;
        exec.pool = &pool;
        instrumented.set_exec(exec);
        instrumented.run(std::nullopt, 30);
    }
    std::printf("%-28s %10.4f s\n", "serial scatter (paper)", t_serial);
    std::printf("%-28s %10.4f s  (%.2fx vs serial)\n", "colored scatter",
                t_colored, t_serial / std::max(t_colored, 1e-12));
    std::printf("%-28s %10.4f s  (%.2fx vs serial)\n", "gather (default)",
                t_gather, t_serial / std::max(t_gather, 1e-12));

    if (cli.has("json")) {
        namespace obs = bl::obs;
        auto doc = obs::Json::object();
        doc["schema"] = obs::Json("bookleaf.bench/1");
        doc["bench"] = obs::Json("fig2_kernels");
        auto& config = doc["config"];
        config = obs::Json::object();
        config["problem"] = obs::Json("noh");
        config["mesh"] = obs::Json(64);
        config["steps"] = obs::Json(30);
        config["threads"] = obs::Json(2);
        // Model values are deterministic — the comparator diffing them is
        // a consistency check, not a perf signal.
        auto& model = doc["model"];
        model = obs::Json::object();
        for (int c = 0; c < config_count; ++c) {
            const auto cfg = static_cast<Config>(c);
            const auto b = model_noh(cfg, reference_work());
            auto& row = model[config_name(cfg)];
            row = obs::Json::object();
            row["viscosity_model_s"] = obs::Json(b.at(Kernel::getq));
            row["acceleration_model_s"] = obs::Json(b.at(Kernel::getacc));
        }
        auto& measured = doc["measured"];
        measured = obs::Json::object();
        measured["getacc_serial_scatter_s"] = obs::Json(t_serial);
        measured["getacc_colored_scatter_s"] = obs::Json(t_colored);
        measured["getacc_gather_s"] = obs::Json(t_gather);
        measured["speedup_colored"] =
            obs::Json(t_serial / std::max(t_colored, 1e-12));
        measured["speedup_gather"] =
            obs::Json(t_serial / std::max(t_gather, 1e-12));

        // Full per-kernel counters of the instrumented run, in the shape
        // calibrate_from_document reads (items = cells swept summed over
        // invocations, so wall_s/items is seconds-per-cell directly).
        auto& mk = doc["measured_kernels"];
        mk = obs::Json::object();
        for (const auto kernel : modelled_kernels) {
            const auto stats = instrumented.profiler().stats(kernel);
            if (stats.calls == 0) continue;
            auto& row = mk[std::string(bl::util::kernel_name(kernel))];
            row = obs::Json::object();
            row["wall_s"] = obs::Json(stats.wall_s);
            row["calls"] = obs::Json(stats.calls);
            row["items"] = obs::Json(stats.items);
        }
        doc["measured_steps"] = obs::Json(30);

        // Close the loop inside the document itself: recalibrate the
        // perfmodel from the measurements above and store the predicted
        // Skylake flat-MPI per-kernel seconds. check_perfmodel.py asserts
        // these shares track the measured wall_s shares.
        const auto cal = calibrate_from_document(doc);
        const auto predicted =
            model_noh(Config::skl_mpi, calibrated_work(cal));
        auto& cm = doc["calibrated_model"];
        cm = obs::Json::object();
        cm["config"] = obs::Json(config_name(Config::skl_mpi));
        for (const auto kernel : modelled_kernels) {
            auto& row = cm[std::string(bl::util::kernel_name(kernel))];
            row = obs::Json::object();
            row["model_s"] = obs::Json(predicted.at(kernel));
        }

        const auto path = cli.get("json", "BENCH_fig2.json");
        obs::write_json_file(path, doc);
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
