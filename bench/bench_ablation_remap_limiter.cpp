/// \file bench_ablation_remap_limiter.cpp
/// Ablation of the remap limiter (§III-A: the swept-volume remap "uses
/// limiters [30] to enforce monotonicity"): Eulerian Sod with the van
/// Leer / Barth-Jespersen limiting on vs off — accuracy against the exact
/// Riemann solution and the overshoot the limiter exists to prevent.
///
/// Plus a distributed section: the ghost-aware remap (dist::remap) driven
/// directly at several rank counts, reporting per-rank remap-halo time
/// (the pre-remap state refresh, gradient and result exchanges — the
/// util::Kernel::halo slot) against the advection kernel time (the
/// alegetmesh/alegetfvol/aleadvect/aleupdate slots), i.e. what fraction
/// of a distributed remap is communication at strong-scaled sizes.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analytic/norms.hpp"
#include "analytic/riemann.hpp"
#include "core/driver.hpp"
#include "dist/distributed.hpp"
#include "mesh/generator.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"
#include "setup/problems.hpp"

using namespace bookleaf;

namespace {

/// Drive dist::remap directly for `iters` Eulerian remaps of a displaced
/// nonuniform state at `n_ranks`, returning the per-rank profiles.
std::vector<std::array<util::KernelStats, util::kernel_count>>
bench_dist_remap(const mesh::Mesh& mesh, const eos::MaterialTable& materials,
                 const std::vector<Real>& rho, const std::vector<Real>& ein,
                 int n_ranks, int iters) {
    const auto part = part::rcb(mesh, n_ranks);
    const auto subs = part::decompose(mesh, part, n_ranks);
    std::vector<util::Profiler> profilers(static_cast<std::size_t>(n_ranks));

    typhon::run(n_ranks, [&](typhon::Comm& comm) {
        const auto& sub = subs[static_cast<std::size_t>(comm.rank())];
        hydro::State s = hydro::allocate(sub.local);
        for (std::size_t lc = 0; lc < sub.local_cells.size(); ++lc) {
            const auto gc = static_cast<std::size_t>(sub.local_cells[lc]);
            s.rho[lc] = rho[gc];
            s.ein[lc] = ein[gc];
        }
        hydro::initialise(sub.local, materials, s);
        hydro::Context ctx;
        ctx.mesh = &sub.local;
        ctx.materials = &materials;
        ctx.profiler = &profilers[static_cast<std::size_t>(comm.rank())];
        ctx.dt_cells = sub.n_owned_cells;
        ctx.assembly_corners = &sub.assembly_corners;

        ale::Options aopts;
        aopts.mode = ale::Mode::eulerian;
        ale::Workspace w;
        const auto& lm = sub.local;
        for (int it = 0; it < iters; ++it) {
            // Fake Lagrangian move: displace strictly-interior nodes off
            // the generation mesh (keyed on generation coordinates, so
            // every rank applies the identical move), rebuild the
            // dependent state, remap back. The Eulerian remap restores
            // the generation mesh exactly, so the loop is stationary.
            for (Index n = 0; n < lm.n_nodes(); ++n) {
                const auto ni = static_cast<std::size_t>(n);
                const Real px = lm.x[ni], py = lm.y[ni];
                if (px < 1e-9 || px > 1 - 1e-9 || py < 1e-9 || py > 1 - 1e-9)
                    continue;
                s.x[ni] += 0.2 / static_cast<Real>(96);
                s.y[ni] += 0.15 / static_cast<Real>(96);
            }
            s.x0 = s.x;
            s.y0 = s.y;
            hydro::getgeom(ctx, s, s.u, s.v, 0.0);
            hydro::getrho(ctx, s);
            hydro::getpc(ctx, s);
            dist::remap(ctx, s, aopts, w, comm, sub,
                        typhon::Packing::coalesced);
        }
    });

    std::vector<std::array<util::KernelStats, util::kernel_count>> out;
    out.reserve(static_cast<std::size_t>(n_ranks));
    for (auto& p : profilers) out.push_back(p.snapshot());
    return out;
}

double slot(const std::array<util::KernelStats, util::kernel_count>& prof,
            util::Kernel k) {
    return prof[static_cast<std::size_t>(k)].wall_s;
}

} // namespace

int main() {
    std::printf("=== Ablation: remap limiter (Eulerian Sod) ===\n\n");
    std::printf("%-10s %12s %12s %14s %14s\n", "limiter", "L1(rho)",
                "Linf(rho)", "max overshoot", "min undershoot");

    const analytic::Riemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    for (const bool limit : {true, false}) {
        auto problem = setup::sod(200, 2);
        problem.ale.mode = ale::Mode::eulerian;
        problem.ale.limit = limit;
        core::Hydro h(std::move(problem));
        h.run();

        const auto norms = analytic::cell_error_norms(
            h.mesh(), h.state().x, h.state().y, h.state().volume,
            h.state().rho, [&](Real cx, Real) {
                return exact.sample((cx - Real(0.5)) / Real(0.2)).rho;
            });
        // Monotonicity: density must stay within the initial range [0.125, 1].
        Real rho_max = 0, rho_min = 1e9;
        for (const Real rho : h.state().rho) {
            rho_max = std::max(rho_max, rho);
            rho_min = std::min(rho_min, rho);
        }
        std::printf("%-10s %12.5f %12.5f %14.3e %14.3e\n",
                    limit ? "on" : "off", norms.l1, norms.linf,
                    rho_max - 1.0, rho_min - 0.125);
    }
    std::printf("\n(positive overshoot / negative undershoot = new extrema "
                "the limiter suppresses)\n");

    // --- distributed remap: halo vs advection time per rank -----------------
    std::printf("\n=== Distributed remap: halo vs advection time per rank "
                "===\n\n");
    const Index n = 96;
    const auto mesh = mesh::generate_rect({.nx = n, .ny = n});
    eos::MaterialTable materials;
    materials.materials = {eos::IdealGas{1.4}};
    std::vector<Real> rho(static_cast<std::size_t>(mesh.n_cells()));
    std::vector<Real> ein(rho.size());
    for (Index c = 0; c < mesh.n_cells(); ++c) {
        rho[static_cast<std::size_t>(c)] = 1.0 + 0.5 * std::sin(0.9 * c);
        ein[static_cast<std::size_t>(c)] = 2.0 + 0.7 * std::cos(1.7 * c);
    }
    const int iters = 40;
    std::printf("%-6s %12s %12s %12s %10s  (mesh %dx%d, %d remaps,"
                " max over ranks)\n",
                "ranks", "halo s", "advect s", "total s", "halo %",
                n, n, iters);
    for (const int ranks : {1, 2, 4, 8}) {
        const auto profiles =
            bench_dist_remap(mesh, materials, rho, ein, ranks, iters);
        double halo = 0.0, advect = 0.0;
        for (const auto& prof : profiles) {
            halo = std::max(halo, slot(prof, util::Kernel::halo));
            advect = std::max(
                advect, slot(prof, util::Kernel::alegetmesh) +
                            slot(prof, util::Kernel::alegetfvol) +
                            slot(prof, util::Kernel::aleadvect) +
                            slot(prof, util::Kernel::aleupdate));
        }
        const double total = halo + advect;
        std::printf("%-6d %12.4f %12.4f %12.4f %9.1f%%\n", ranks, halo,
                    advect, total, total > 0 ? 100.0 * halo / total : 0.0);
    }
    std::printf("\n(halo = pre-remap state refresh + gradient + fused result "
                "exchanges; advect = alegetmesh/fvol/advect/update kernels; "
                "in-process Hub, so halo time is pack/copy/wait)\n");
    return 0;
}
