/// \file bench_ablation_remap_limiter.cpp
/// Ablation of the remap limiter (§III-A: the swept-volume remap "uses
/// limiters [30] to enforce monotonicity"): Eulerian Sod with the van
/// Leer / Barth-Jespersen limiting on vs off — accuracy against the exact
/// Riemann solution and the overshoot the limiter exists to prevent.

#include <algorithm>
#include <cstdio>

#include "analytic/norms.hpp"
#include "analytic/riemann.hpp"
#include "core/driver.hpp"
#include "setup/problems.hpp"

using namespace bookleaf;

int main() {
    std::printf("=== Ablation: remap limiter (Eulerian Sod) ===\n\n");
    std::printf("%-10s %12s %12s %14s %14s\n", "limiter", "L1(rho)",
                "Linf(rho)", "max overshoot", "min undershoot");

    const analytic::Riemann exact({1.0, 0.0, 1.0}, {0.125, 0.0, 0.1}, 1.4);
    for (const bool limit : {true, false}) {
        auto problem = setup::sod(200, 2);
        problem.ale.mode = ale::Mode::eulerian;
        problem.ale.limit = limit;
        core::Hydro h(std::move(problem));
        h.run();

        const auto norms = analytic::cell_error_norms(
            h.mesh(), h.state().x, h.state().y, h.state().volume,
            h.state().rho, [&](Real cx, Real) {
                return exact.sample((cx - Real(0.5)) / Real(0.2)).rho;
            });
        // Monotonicity: density must stay within the initial range [0.125, 1].
        Real rho_max = 0, rho_min = 1e9;
        for (const Real rho : h.state().rho) {
            rho_max = std::max(rho_max, rho);
            rho_min = std::min(rho_min, rho);
        }
        std::printf("%-10s %12.5f %12.5f %14.3e %14.3e\n",
                    limit ? "on" : "off", norms.l1, norms.linf,
                    rho_max - 1.0, rho_min - 0.125);
    }
    std::printf("\n(positive overshoot / negative undershoot = new extrema "
                "the limiter suppresses)\n");
    return 0;
}
