/// \file bench_ablation_acceleration.cpp
/// Ablation for the acceleration kernel's data dependency (§IV-B): the
/// corner-force scatter races under threading, so the reference OpenMP
/// port leaves it serial; the fix the paper alludes to ("could be fixed
/// by rewriting the kernel") is implemented here as a conflict-free
/// colouring. This bench shows (a) the model-level effect on the hybrid
/// column of Table II, and (b) the real kernel running both ways with
/// identical results.

#include <cmath>
#include <cstdio>

#include "core/driver.hpp"
#include "perfmodel/model.hpp"
#include "setup/problems.hpp"

using namespace bookleaf;
using namespace bookleaf::perfmodel;
using util::Kernel;

int main() {
    std::printf("=== Ablation: acceleration-kernel data dependency (§IV-B) ===\n\n");

    // --- model level: what Table II's hybrid column would look like with
    // the scatter parallelised (serial fraction -> 0).
    WorkTable fixed = reference_work();
    fixed.at(Kernel::getacc).hybrid_serial = 0.0;
    for (const auto& platform : {skylake(), broadwell()}) {
        const auto& work_acc = reference_work().at(Kernel::getacc);
        const double flat =
            cpu_kernel_seconds(platform, work_acc, table2_cells, table2_steps,
                               false);
        const double hybrid_serial =
            cpu_kernel_seconds(platform, work_acc, table2_cells, table2_steps,
                               true);
        const double hybrid_colored = cpu_kernel_seconds(
            platform, fixed.at(Kernel::getacc), table2_cells, table2_steps,
            true);
        std::printf("%-40s flat %6.1fs | hybrid(serial scatter) %6.1fs | "
                    "hybrid(colored) %6.1fs\n",
                    platform.name.c_str(), flat, hybrid_serial, hybrid_colored);
    }

    // --- real kernels: the three assembly strategies, identical physics.
    // serial scatter and colored scatter are the paper's §IV-B ablation
    // baselines; the gather over the node->(cell, corner) CSR is the
    // default production path (race-free, bitwise thread-count
    // independent).
    std::printf("\nreal kernel check (Noh 48x48, 40 steps, 2 threads):\n");
    auto run = [](par::Assembly assembly) {
        core::Hydro h(setup::noh(48));
        par::ThreadPool pool(2);
        par::Exec exec;
        exec.pool = &pool;
        h.set_exec(exec);
        h.set_assembly(assembly);
        h.run(std::nullopt, 40);
        return std::make_pair(h.state().rho,
                              h.profiler().stats(Kernel::getacc).wall_s);
    };
    const auto [rho_serial, t_serial] = run(par::Assembly::serial_scatter);
    const auto [rho_colored, t_colored] = run(par::Assembly::colored_scatter);
    const auto [rho_gather, t_gather] = run(par::Assembly::gather);
    double max_colored = 0, max_gather = 0;
    for (std::size_t c = 0; c < rho_serial.size(); ++c) {
        max_colored =
            std::max(max_colored, std::abs(rho_serial[c] - rho_colored[c]));
        max_gather =
            std::max(max_gather, std::abs(rho_serial[c] - rho_gather[c]));
    }
    std::printf("  serial scatter:  getacc %.4f s\n", t_serial);
    std::printf("  colored scatter: getacc %.4f s  (max |drho| %.3e)\n",
                t_colored, max_colored);
    std::printf("  gather (default): getacc %.4f s  (max |drho| %.3e, "
                "must be exactly 0)\n",
                t_gather, max_gather);
    return 0;
}
