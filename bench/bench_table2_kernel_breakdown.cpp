/// \file bench_table2_kernel_breakdown.cpp
/// Regenerates **Table II** of the paper: the per-kernel performance
/// breakdown of the Noh problem across the seven single-node
/// configurations (with Table I printed as the preamble). Model values
/// come from the mechanism-based performance model (src/perfmodel); the
/// published values are printed alongside for comparison.
///
///   ./bench_table2_kernel_breakdown [--calibrated] [--json out.json]
///
/// With --calibrated, the kernel work table is rebuilt from instrumented
/// runs of THIS repository's kernels (perfmodel::calibrate_noh), showing
/// how the C++ port's kernel balance differs from the Fortran reference.
/// With --json, the full model/paper table is written as a
/// "bookleaf.bench/1" document for the persisted perf trajectory.

#include <cstdio>

#include "obs/json.hpp"
#include "perfmodel/calibrate.hpp"
#include "perfmodel/paper_data.hpp"
#include "util/cli.hpp"

using namespace bookleaf;
using namespace bookleaf::perfmodel;
using util::Kernel;

int main(int argc, char** argv) {
    const util::Cli cli(argc, argv);

    std::printf("=== Table I: experimental configurations ===\n");
    std::printf("%-18s %-48s %-22s %s\n", "Config", "Hardware", "System",
                "Compiler");
    for (const auto& [config, row] : paper_table1())
        std::printf("%-18s %-48s %-22s %s\n", config_name(config).c_str(),
                    row.hardware, row.system, row.compiler);

    WorkTable work = reference_work();
    if (cli.has("calibrated")) {
        std::printf("\n(calibrating against this repository's kernels...)\n");
        work = calibrated_work(calibrate_noh());
    }

    std::printf("\n=== Table II: per-kernel breakdown, Noh, single node ===\n");
    std::printf("(model seconds | paper seconds)\n\n");
    std::printf("%-18s %17s %17s %17s %17s %17s %17s %17s\n", "Config",
                "Overall", "Viscosity", "Acceleration", "getdt", "getgeom",
                "getforce", "getpc");

    for (int c = 0; c < config_count; ++c) {
        const auto config = static_cast<Config>(c);
        const auto b = model_noh(config, work);
        const auto& paper = paper_table2().at(config);
        auto cell = [](double model, double published) {
            static char buf[32];
            std::snprintf(buf, sizeof buf, "%7.1f |%7.1f", model, published);
            return std::string(buf);
        };
        std::printf("%-18s %s %s %s %s %s %s %s\n", config_name(config).c_str(),
                    cell(b.overall, paper.overall).c_str(),
                    cell(b.at(Kernel::getq), paper.viscosity).c_str(),
                    cell(b.at(Kernel::getacc), paper.acceleration).c_str(),
                    cell(b.at(Kernel::getdt), paper.getdt).c_str(),
                    cell(b.at(Kernel::getgeom), paper.getgeom).c_str(),
                    cell(b.at(Kernel::getforce), paper.getforce).c_str(),
                    cell(b.at(Kernel::getpc), paper.getpc).c_str());
    }

    std::printf("\nShape checks (paper's qualitative claims):\n");
    const auto skl = model_noh(Config::skl_mpi, work);
    const auto skl_h = model_noh(Config::skl_hybrid, work);
    const auto p100o = model_noh(Config::p100_omp, work);
    const auto p100c = model_noh(Config::p100_cuda, work);
    const auto v100c = model_noh(Config::v100_cuda, work);
    std::printf("  flat MPI beats hybrid:            %s\n",
                skl.overall < skl_h.overall ? "yes" : "NO");
    std::printf("  viscosity share (Skylake MPI):    %.0f%% (paper: 70%%)\n",
                100.0 * skl.at(Kernel::getq) / skl.overall);
    std::printf("  hybrid viscosity within ~5%%:      %.1f%%\n",
                100.0 * (skl_h.at(Kernel::getq) / skl.at(Kernel::getq) - 1.0));
    std::printf("  P100 OpenMP beats P100 CUDA:      %s\n",
                p100o.overall < p100c.overall ? "yes" : "NO");
    std::printf("  V100 CUDA beats P100 CUDA:        %s\n",
                v100c.overall < p100c.overall ? "yes" : "NO");
    std::printf("  host getdt ~equal P100/V100:      %.2f ratio\n",
                v100c.at(Kernel::getdt) / p100c.at(Kernel::getdt));

    if (cli.has("json")) {
        auto doc = obs::Json::object();
        doc["schema"] = obs::Json("bookleaf.bench/1");
        doc["bench"] = obs::Json("table2_kernel_breakdown");
        auto& config = doc["config"];
        config = obs::Json::object();
        config["calibrated"] = obs::Json(cli.has("calibrated"));
        auto& rows = doc["rows"];
        rows = obs::Json::object();
        for (int c = 0; c < config_count; ++c) {
            const auto cfg = static_cast<Config>(c);
            const auto b = model_noh(cfg, work);
            const auto& paper = paper_table2().at(cfg);
            auto& row = rows[config_name(cfg)];
            row = obs::Json::object();
            row["overall_model_s"] = obs::Json(b.overall);
            row["overall_paper_s"] = obs::Json(paper.overall);
            row["viscosity_model_s"] = obs::Json(b.at(Kernel::getq));
            row["acceleration_model_s"] = obs::Json(b.at(Kernel::getacc));
            row["getdt_model_s"] = obs::Json(b.at(Kernel::getdt));
            row["getgeom_model_s"] = obs::Json(b.at(Kernel::getgeom));
            row["getforce_model_s"] = obs::Json(b.at(Kernel::getforce));
            row["getpc_model_s"] = obs::Json(b.at(Kernel::getpc));
        }
        const auto path = cli.get("json", "BENCH_table2.json");
        obs::write_json_file(path, doc);
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}
