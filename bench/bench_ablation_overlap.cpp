/// \file bench_ablation_overlap.cpp
/// Ablation for the distributed driver's halo/compute overlap: the same
/// Sod and Noh rigs run through the blocking two-exchange schedule (the
/// paper's) and the nonblocking request-based schedule that hides both
/// halos behind interior kernels. Reports wall time and the per-rank time
/// charged to the halo kernel (the overlapped schedule's halo bucket only
/// pays packing/posting plus whatever wait the interior work could not
/// hide), and verifies the bitwise-identity contract between the two
/// schedules on every rig.

#include <cmath>
#include <cstdio>

#include "dist/distributed.hpp"
#include "setup/problems.hpp"
#include "util/timer.hpp"

using namespace bookleaf;

namespace {

struct RigResult {
    double wall = 0.0;
    double halo_max = 0.0; ///< max per-rank halo seconds
    dist::Result fields;
};

RigResult run_rig(const setup::Problem& p, int ranks, Real t_end,
                  bool overlap) {
    dist::Options opts;
    opts.n_ranks = ranks;
    opts.t_end = t_end;
    opts.hydro = p.hydro;
    opts.overlap = overlap;
    RigResult out;
    const util::Timer timer;
    out.fields = dist::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
    out.wall = timer.elapsed();
    for (const auto& prof : out.fields.profiles)
        out.halo_max = std::max(
            out.halo_max,
            prof[static_cast<std::size_t>(util::Kernel::halo)].wall_s);
    return out;
}

void rig(const char* name, const setup::Problem& p, Real t_end) {
    std::printf("%s, 4 ranks:\n", name);
    std::printf("  %-22s %10s %14s\n", "schedule", "wall(s)", "max halo(s)");
    const auto blocking = run_rig(p, 4, t_end, false);
    const auto overlap = run_rig(p, 4, t_end, true);
    std::printf("  %-22s %10.3f %14.4f\n", "blocking (paper)", blocking.wall,
                blocking.halo_max);
    std::printf("  %-22s %10.3f %14.4f\n", "overlap (nonblocking)",
                overlap.wall, overlap.halo_max);
    std::printf("  speedup %.2fx, halo bucket %.2fx smaller, results %s\n\n",
                blocking.wall / overlap.wall,
                blocking.halo_max / std::max(overlap.halo_max, 1e-12),
                dist::bitwise_equal(blocking.fields, overlap.fields)
                    ? "bitwise identical"
                    : "MISMATCH (contract violated!)");
}

} // namespace

int main() {
    std::printf("=== Ablation: halo/compute overlap in the distributed "
                "driver ===\n\n");
    std::printf("Both schedules move the same ghost bytes; the overlapped\n"
                "one posts each exchange through typhon's request layer and\n"
                "runs interior cells/nodes while the messages are in "
                "flight.\n\n");
    rig("Sod 200x4", setup::sod(200, 4), 0.2);
    rig("Noh 64x64", setup::noh(64), 0.3);
    return 0;
}
