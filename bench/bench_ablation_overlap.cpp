/// \file bench_ablation_overlap.cpp
/// Ablations for the distributed driver's communication machinery:
///
/// 1. halo/compute *overlap* — the same Sod and Noh rigs run through the
///    blocking two-exchange schedule (the paper's) and the nonblocking
///    request-based schedule that hides both halos (and the dt reduce)
///    behind interior kernels. Reports wall time and the per-rank time
///    charged to the halo kernel (the overlapped schedule's halo bucket
///    only pays packing/posting plus whatever wait the interior work
///    could not hide).
/// 2. message *coalescing* — one buffer per peer per exchange (fields
///    back-to-back) versus the one-message-per-field baseline. Reports
///    the measured per-step message count and mean bytes per message, and
///    checks the count against the schedule metadata
///    (part::Subdomain::messages_per_step): n_peers per exchange when
///    coalesced, n_fields x n_peers per field-split exchange otherwise.
///
/// Every combination is verified against the bitwise-identity contract.

#include <cmath>
#include <cstdio>

#include "dist/distributed.hpp"
#include "part/partition.hpp"
#include "part/subdomain.hpp"
#include "setup/problems.hpp"
#include "util/timer.hpp"

using namespace bookleaf;

namespace {

struct RigResult {
    double wall = 0.0;
    double halo_max = 0.0; ///< max per-rank halo seconds
    dist::Result fields;
};

RigResult run_rig(const setup::Problem& p, int ranks, Real t_end, bool overlap,
                  typhon::Packing packing) {
    dist::Options opts;
    opts.n_ranks = ranks;
    opts.t_end = t_end;
    opts.hydro = p.hydro;
    opts.ale = p.ale;
    opts.overlap = overlap;
    opts.packing = packing;
    RigResult out;
    const util::Timer timer;
    out.fields = dist::run(p.mesh, p.materials, p.rho, p.ein, p.u, p.v, opts);
    out.wall = timer.elapsed();
    for (const auto& prof : out.fields.profiles)
        out.halo_max = std::max(
            out.halo_max,
            prof[static_cast<std::size_t>(util::Kernel::halo)].wall_s);
    return out;
}

/// Expected per-step message count from the schedule metadata.
long expected_messages_per_step(const setup::Problem& p, int ranks,
                                typhon::Packing packing) {
    const auto part = part::rcb(p.mesh, ranks);
    const auto subs = part::decompose(p.mesh, part, ranks);
    long n = 0;
    for (const auto& sub : subs) n += sub.messages_per_step(packing);
    return n;
}

void rig(const char* name, const setup::Problem& p, Real t_end) {
    constexpr int ranks = 4;
    std::printf("%s, %d ranks:\n", name, ranks);
    std::printf("  %-32s %9s %12s %10s %11s\n", "schedule", "wall(s)",
                "max halo(s)", "msgs/step", "bytes/msg");

    const auto coalesced = typhon::Packing::coalesced;
    const auto per_field = typhon::Packing::per_field;
    const auto blocking = run_rig(p, ranks, t_end, false, coalesced);
    const auto blocking_pf = run_rig(p, ranks, t_end, false, per_field);
    const auto overlap = run_rig(p, ranks, t_end, true, coalesced);
    const auto overlap_pf = run_rig(p, ranks, t_end, true, per_field);

    const auto row = [](const char* label, const RigResult& r) {
        const auto& traffic = r.fields.traffic;
        const double per_step =
            r.fields.steps > 0
                ? static_cast<double>(traffic.messages) / r.fields.steps
                : 0.0;
        const double bytes_per_msg =
            traffic.messages > 0
                ? static_cast<double>(traffic.reals) * sizeof(Real) /
                      static_cast<double>(traffic.messages)
                : 0.0;
        std::printf("  %-32s %9.3f %12.4f %10.1f %11.1f\n", label, r.wall,
                    r.halo_max, per_step, bytes_per_msg);
    };
    row("blocking + per-field (paper)", blocking_pf);
    row("blocking + coalesced", blocking);
    row("overlap  + per-field", overlap_pf);
    row("overlap  + coalesced (default)", overlap);

    const bool bitwise =
        dist::bitwise_equal(blocking.fields, overlap.fields) &&
        dist::bitwise_equal(blocking.fields, blocking_pf.fields) &&
        dist::bitwise_equal(blocking.fields, overlap_pf.fields);
    const long want_coalesced = expected_messages_per_step(p, ranks, coalesced);
    const long want_per_field = expected_messages_per_step(p, ranks, per_field);
    const bool counts_ok =
        overlap.fields.traffic.messages ==
            static_cast<long>(overlap.fields.steps) * want_coalesced &&
        overlap_pf.fields.traffic.messages ==
            static_cast<long>(overlap_pf.fields.steps) * want_per_field;
    std::printf("  overlap speedup %.2fx, halo bucket %.2fx smaller; "
                "coalescing: %.2fx fewer messages\n",
                blocking_pf.wall / overlap.wall,
                blocking_pf.halo_max / std::max(overlap.halo_max, 1e-12),
                static_cast<double>(overlap_pf.fields.traffic.messages) /
                    std::max<long>(overlap.fields.traffic.messages, 1));
    std::printf("  message count vs schedule metadata (%ld vs %ld per step): "
                "%s; results %s\n\n",
                want_coalesced, want_per_field,
                counts_ok ? "exact" : "MISMATCH (wire format drifted!)",
                bitwise ? "bitwise identical"
                        : "MISMATCH (contract violated!)");
}

} // namespace

int main() {
    std::printf("=== Ablation: halo/compute overlap + message coalescing in "
                "the distributed driver ===\n\n");
    std::printf(
        "All four schedule x packing combinations move the same ghost\n"
        "bytes. Overlap posts each exchange (and the dt min-reduce)\n"
        "through typhon's request layer and runs interior cells while\n"
        "the messages fly; coalescing packs every field of an exchange\n"
        "into one buffer per peer, cutting the per-step message count\n"
        "from n_fields x n_peers to n_peers.\n\n");
    rig("Sod 200x4", setup::sod(200, 4), 0.2);
    rig("Noh 64x64", setup::noh(64), 0.3);
    return 0;
}
